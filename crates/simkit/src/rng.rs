//! Deterministic random-number generation with named sub-streams.

use rand::rngs::StdRng;
use rand::{Rng, RngCore, SeedableRng};

/// A deterministic, seedable random-number generator.
///
/// Experiments seed a single `SimRng` and derive independent sub-streams for
/// each component (FaaS latency, storage latency, player behaviour, ...) so
/// that adding randomness consumption in one component does not change the
/// random sequence observed by another — a prerequisite for reproducible
/// ablations.
///
/// # Example
///
/// ```
/// use servo_simkit::SimRng;
/// use rand::Rng;
///
/// let mut a = SimRng::seed(42).substream("faas");
/// let mut b = SimRng::seed(42).substream("faas");
/// assert_eq!(a.gen::<u64>(), b.gen::<u64>());
///
/// let mut c = SimRng::seed(42).substream("storage");
/// assert_ne!(a.gen::<u64>(), c.gen::<u64>());
/// ```
#[derive(Debug, Clone)]
pub struct SimRng {
    seed: u64,
    inner: StdRng,
}

impl SimRng {
    /// Creates a generator from a 64-bit seed.
    pub fn seed(seed: u64) -> Self {
        SimRng {
            seed,
            inner: StdRng::seed_from_u64(seed),
        }
    }

    /// The seed this generator was created with.
    pub fn seed_value(&self) -> u64 {
        self.seed
    }

    /// Derives an independent generator for the named component.
    ///
    /// The derivation hashes the component name into the seed, so the same
    /// `(seed, name)` pair always yields the same stream.
    pub fn substream(&self, name: &str) -> SimRng {
        let derived = splitmix64(self.seed ^ fnv1a(name.as_bytes()));
        SimRng {
            seed: derived,
            inner: StdRng::seed_from_u64(derived),
        }
    }

    /// Derives an independent generator for an indexed replica of a
    /// component, e.g. one stream per player.
    pub fn substream_indexed(&self, name: &str, index: u64) -> SimRng {
        let derived = splitmix64(self.seed ^ fnv1a(name.as_bytes()) ^ splitmix64(index));
        SimRng {
            seed: derived,
            inner: StdRng::seed_from_u64(derived),
        }
    }

    /// Samples a uniform floating-point value in `[0, 1)`.
    pub fn unit(&mut self) -> f64 {
        self.inner.gen::<f64>()
    }
}

impl RngCore for SimRng {
    fn next_u32(&mut self) -> u32 {
        self.inner.next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        self.inner.next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        self.inner.fill_bytes(dest)
    }
    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), rand::Error> {
        self.inner.try_fill_bytes(dest)
    }
}

/// 64-bit FNV-1a hash, used to fold component names into seeds.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// SplitMix64 finalizer, used to decorrelate derived seeds.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn same_seed_same_sequence() {
        let mut a = SimRng::seed(7);
        let mut b = SimRng::seed(7);
        let xs: Vec<u64> = (0..16).map(|_| a.gen()).collect();
        let ys: Vec<u64> = (0..16).map(|_| b.gen()).collect();
        assert_eq!(xs, ys);
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = SimRng::seed(1);
        let mut b = SimRng::seed(2);
        let xs: Vec<u64> = (0..8).map(|_| a.gen()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.gen()).collect();
        assert_ne!(xs, ys);
    }

    #[test]
    fn substreams_are_independent_and_stable() {
        let root = SimRng::seed(99);
        let mut s1 = root.substream("faas");
        let mut s2 = root.substream("faas");
        let mut other = root.substream("storage");
        assert_eq!(s1.gen::<u64>(), s2.gen::<u64>());
        // Overwhelmingly likely to differ.
        assert_ne!(s1.gen::<u64>(), other.gen::<u64>());
    }

    #[test]
    fn indexed_substreams_differ_per_index() {
        let root = SimRng::seed(5);
        let mut p0 = root.substream_indexed("player", 0);
        let mut p1 = root.substream_indexed("player", 1);
        assert_ne!(p0.gen::<u64>(), p1.gen::<u64>());
    }

    #[test]
    fn unit_is_in_range() {
        let mut rng = SimRng::seed(3);
        for _ in 0..1000 {
            let u = rng.unit();
            assert!((0.0..1.0).contains(&u));
        }
    }
}

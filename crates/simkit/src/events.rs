//! A time-ordered event queue.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use servo_types::SimTime;

/// A future event: a payload scheduled to occur at a virtual-time instant.
#[derive(Debug)]
struct ScheduledEvent<T> {
    at: SimTime,
    seq: u64,
    payload: T,
}

impl<T> PartialEq for ScheduledEvent<T> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<T> Eq for ScheduledEvent<T> {}

impl<T> PartialOrd for ScheduledEvent<T> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<T> Ord for ScheduledEvent<T> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; reverse so the earliest event pops first.
        // Ties break on sequence number, giving FIFO order for equal times.
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A queue of future events ordered by virtual time.
///
/// Events scheduled for the same instant pop in the order they were
/// scheduled (FIFO), which keeps simulations deterministic.
///
/// # Example
///
/// ```
/// use servo_simkit::EventQueue;
/// use servo_types::SimTime;
///
/// let mut q = EventQueue::new();
/// q.schedule(SimTime::from_millis(20), "second");
/// q.schedule(SimTime::from_millis(10), "first");
/// q.schedule(SimTime::from_millis(20), "third");
///
/// let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
/// assert_eq!(order, vec!["first", "second", "third"]);
/// ```
#[derive(Debug)]
pub struct EventQueue<T> {
    heap: BinaryHeap<ScheduledEvent<T>>,
    next_seq: u64,
}

impl<T> Default for EventQueue<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> EventQueue<T> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
        }
    }

    /// Schedules `payload` to occur at instant `at`.
    pub fn schedule(&mut self, at: SimTime, payload: T) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(ScheduledEvent { at, seq, payload });
    }

    /// Removes and returns the earliest event, if any.
    pub fn pop(&mut self) -> Option<(SimTime, T)> {
        self.heap.pop().map(|e| (e.at, e.payload))
    }

    /// Removes and returns the earliest event if it occurs at or before
    /// `deadline`.
    pub fn pop_before(&mut self, deadline: SimTime) -> Option<(SimTime, T)> {
        if self.peek_time()? <= deadline {
            self.pop()
        } else {
            None
        }
    }

    /// The instant of the earliest scheduled event, if any.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.at)
    }

    /// Number of events currently scheduled.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether the queue has no scheduled events.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Removes all scheduled events.
    pub fn clear(&mut self) {
        self.heap.clear();
    }

    /// Drains every event scheduled at or before `deadline`, in time order.
    pub fn drain_until(&mut self, deadline: SimTime) -> Vec<(SimTime, T)> {
        let mut drained = Vec::new();
        while let Some(ev) = self.pop_before(deadline) {
            drained.push(ev);
        }
        drained
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_millis(30), 3);
        q.schedule(SimTime::from_millis(10), 1);
        q.schedule(SimTime::from_millis(20), 2);
        let order: Vec<i32> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn simultaneous_events_are_fifo() {
        let mut q = EventQueue::new();
        let t = SimTime::from_millis(5);
        for i in 0..100 {
            q.schedule(t, i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn pop_before_respects_deadline() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_millis(100), "late");
        q.schedule(SimTime::from_millis(10), "early");
        assert_eq!(
            q.pop_before(SimTime::from_millis(50)).map(|(_, e)| e),
            Some("early")
        );
        assert_eq!(q.pop_before(SimTime::from_millis(50)), None);
        assert_eq!(q.len(), 1);
    }

    #[test]
    fn drain_until_collects_all_due_events() {
        let mut q = EventQueue::new();
        for i in 0..10u64 {
            q.schedule(SimTime::from_millis(i * 10), i);
        }
        let drained = q.drain_until(SimTime::from_millis(45));
        assert_eq!(drained.len(), 5);
        assert_eq!(q.len(), 5);
        assert!(drained.windows(2).all(|w| w[0].0 <= w[1].0));
    }

    #[test]
    fn empty_queue_behaviour() {
        let mut q: EventQueue<()> = EventQueue::new();
        assert!(q.is_empty());
        assert_eq!(q.pop(), None);
        assert_eq!(q.peek_time(), None);
        q.schedule(SimTime::ZERO, ());
        q.clear();
        assert!(q.is_empty());
    }
}

//! Discrete-event simulation kit.
//!
//! All Servo experiments run on virtual time so that a ten-minute, 200-player
//! experiment finishes in seconds and is exactly reproducible. This crate
//! provides the building blocks:
//!
//! * [`SimClock`] — a monotonically advancing virtual clock;
//! * [`EventQueue`] — a time-ordered queue of future events with stable
//!   FIFO ordering for simultaneous events;
//! * [`SimRng`] — a deterministic, seedable random-number generator with
//!   named sub-streams so components do not perturb each other's randomness;
//! * [`dist`] — latency distributions (normal, lognormal, exponential,
//!   Pareto-tailed mixtures) used to model cloud-service behaviour.
//!
//! # Example
//!
//! ```
//! use servo_simkit::{EventQueue, SimClock};
//! use servo_types::{SimDuration, SimTime};
//!
//! let mut clock = SimClock::new();
//! let mut queue: EventQueue<&str> = EventQueue::new();
//! queue.schedule(SimTime::from_millis(100), "b");
//! queue.schedule(SimTime::from_millis(50), "a");
//!
//! let (t, ev) = queue.pop().unwrap();
//! clock.advance_to(t);
//! assert_eq!(ev, "a");
//! assert_eq!(clock.now(), SimTime::from_millis(50));
//! ```

#![warn(missing_docs)]

pub mod clock;
pub mod dist;
pub mod events;
pub mod rng;

pub use clock::SimClock;
pub use dist::{Distribution, LatencyModel};
pub use events::EventQueue;
pub use rng::SimRng;

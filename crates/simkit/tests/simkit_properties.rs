//! Property-based tests for the simulation kit.

use proptest::prelude::*;
use rand::Rng;
use servo_simkit::{dist, Distribution, EventQueue, LatencyModel, SimClock, SimRng};
use servo_types::{SimDuration, SimTime};

proptest! {
    /// The event queue always pops events in non-decreasing time order,
    /// regardless of insertion order, and FIFO for equal times.
    #[test]
    fn event_queue_orders_events(times in prop::collection::vec(0u64..10_000, 1..200)) {
        let mut queue = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            queue.schedule(SimTime::from_micros(t), (t, i));
        }
        let mut previous: Option<(SimTime, usize)> = None;
        while let Some((at, (t, seq))) = queue.pop() {
            prop_assert_eq!(at, SimTime::from_micros(t));
            if let Some((prev_at, prev_seq)) = previous {
                prop_assert!(at >= prev_at);
                if at == prev_at {
                    prop_assert!(seq > prev_seq);
                }
            }
            previous = Some((at, seq));
        }
    }

    /// The clock is monotone under any interleaving of advance operations.
    #[test]
    fn clock_is_monotone(ops in prop::collection::vec((any::<bool>(), 0u64..100_000), 1..200)) {
        let mut clock = SimClock::new();
        let mut last = clock.now();
        for (advance_to, value) in ops {
            if advance_to {
                clock.advance_to(SimTime::from_micros(value));
            } else {
                clock.advance_by(SimDuration::from_micros(value % 1000));
            }
            prop_assert!(clock.now() >= last);
            last = clock.now();
        }
    }

    /// Identical seeds give identical random streams; substreams with
    /// different names diverge.
    #[test]
    fn rng_streams_are_reproducible(seed in any::<u64>()) {
        let mut a = SimRng::seed(seed);
        let mut b = SimRng::seed(seed);
        let xs: Vec<u64> = (0..8).map(|_| a.gen()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.gen()).collect();
        prop_assert_eq!(xs, ys);

        let mut s1 = SimRng::seed(seed).substream("alpha");
        let mut s2 = SimRng::seed(seed).substream("beta");
        let v1: Vec<u64> = (0..4).map(|_| s1.gen()).collect();
        let v2: Vec<u64> = (0..4).map(|_| s2.gen()).collect();
        prop_assert_ne!(v1, v2);
    }

    /// Latency samples are never negative and never exceed the configured
    /// ceiling.
    #[test]
    fn latency_samples_respect_bounds(
        median in 0.1f64..500.0,
        sigma in 0.01f64..1.5,
        ceiling in 10.0f64..2000.0,
        seed in any::<u64>(),
    ) {
        let model = LatencyModel::new(median, sigma)
            .with_outliers(0.05, median * 10.0, 1.8)
            .with_ceiling(ceiling);
        let mut rng = SimRng::seed(seed);
        for _ in 0..200 {
            let sample = model.sample_ms(&mut rng);
            prop_assert!(sample >= 0.0);
            prop_assert!(sample <= ceiling + 1e-9);
            let duration = model.sample(&mut rng);
            prop_assert!(duration.as_millis_f64() <= ceiling + 1e-9);
        }
    }

    /// The uniform distribution stays within its bounds.
    #[test]
    fn uniform_stays_in_bounds(lo in 0.0f64..100.0, width in 0.1f64..100.0, seed in any::<u64>()) {
        let d = dist::Uniform { lo, hi: lo + width };
        let mut rng = SimRng::seed(seed);
        for _ in 0..100 {
            let s = d.sample_ms(&mut rng);
            prop_assert!(s >= lo && s < lo + width);
        }
    }
}

//! Real-CPU benchmark of Servo's speculative execution unit and of the full
//! game-loop tick for the three systems under a construct-heavy workload.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use servo_bench::{build_system, ExperimentWorld, SystemKind};
use servo_core::{SpeculationConfig, SpeculativeScBackend};
use servo_faas::{FaasPlatform, FunctionConfig};
use servo_redstone::{generators, Construct};
use servo_server::ScBackend;
use servo_simkit::SimRng;
use servo_types::{ConstructId, MemoryMb, SimTime, Tick};
use servo_workload::{BehaviorKind, PlayerFleet};

fn bench_resolve(c: &mut Criterion) {
    c.bench_function("speculative_resolve_per_tick", |b| {
        let platform = FaasPlatform::new(
            FunctionConfig::aws_like(MemoryMb::new(2048)),
            SimRng::seed(1),
        );
        let mut backend = SpeculativeScBackend::new(SpeculationConfig::default(), platform);
        let mut construct = Construct::new(generators::dense_circuit(64));
        let mut tick = 0u64;
        b.iter(|| {
            tick += 1;
            backend.resolve(
                ConstructId::new(0),
                &mut construct,
                Tick(tick),
                SimTime::from_millis(tick * 50),
            )
        });
    });
}

fn bench_server_tick(c: &mut Criterion) {
    let mut group = c.benchmark_group("server_tick_100sc_50players");
    group.sample_size(20);
    for kind in [
        SystemKind::Servo,
        SystemKind::Opencraft,
        SystemKind::Minecraft,
    ] {
        group.bench_with_input(
            BenchmarkId::from_parameter(kind.name()),
            &kind,
            |b, &kind| {
                let world = ExperimentWorld::flat_sc(100);
                let mut server = build_system(kind, &world, 9);
                let mut fleet =
                    PlayerFleet::new(BehaviorKind::Bounded { radius: 24.0 }, SimRng::seed(10));
                fleet.connect_all(50);
                let tick_budget = server.config().tick_budget();
                b.iter(|| {
                    let events = fleet.tick(server.now(), tick_budget);
                    let positions = fleet.positions();
                    server.run_tick(&positions, &events)
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_resolve, bench_server_tick);
criterion_main!(benches);

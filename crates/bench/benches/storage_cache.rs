//! Real-CPU benchmark of the storage cache hot paths (Figure 13's code
//! path: cache lookups, pre-fetch bookkeeping, serialization round trips).

use criterion::{criterion_group, criterion_main, Criterion};
use servo_simkit::SimRng;
use servo_storage::{BlobStore, BlobTier, CachedChunkStore, ObjectStore};
use servo_types::{ChunkPos, SimTime};
use servo_world::Chunk;

fn seeded_cache(chunks: i32) -> CachedChunkStore<BlobStore> {
    let mut remote = BlobStore::new(BlobTier::Standard, SimRng::seed(1));
    for x in 0..chunks {
        for z in 0..chunks {
            remote
                .write(
                    &format!("terrain/{x}/{z}"),
                    Chunk::empty(ChunkPos::new(x, z)).to_bytes(),
                    SimTime::ZERO,
                )
                .unwrap();
        }
    }
    CachedChunkStore::new(remote, SimRng::seed(2))
}

fn bench_cache_reads(c: &mut Criterion) {
    let mut group = c.benchmark_group("cached_chunk_store");
    group.bench_function("memory_hit", |b| {
        let mut store = seeded_cache(4);
        store.read(ChunkPos::new(0, 0), SimTime::ZERO).unwrap();
        b.iter(|| {
            store
                .read(ChunkPos::new(0, 0), SimTime::from_secs(1))
                .unwrap()
        });
    });
    group.bench_function("remote_miss_then_hit_cycle", |b| {
        let mut store = seeded_cache(16);
        let mut i = 0i32;
        b.iter(|| {
            i = (i + 1) % 16;
            store
                .read(ChunkPos::new(i, i), SimTime::from_secs(1))
                .unwrap()
        });
    });
    group.bench_function("prefetch_issue", |b| {
        let mut store = seeded_cache(24);
        let mut offset = 0i32;
        b.iter(|| {
            offset = (offset + 1) % 20;
            let targets: Vec<ChunkPos> = (0..4).map(|d| ChunkPos::new(offset + d, 0)).collect();
            store.prefetch(targets, SimTime::from_secs(2));
        });
    });
    group.finish();
}

criterion_group!(benches, bench_cache_reads);
criterion_main!(benches);

//! Real-CPU benchmark of the simulated-construct engine: steps per second
//! for the construct sizes the paper evaluates (Section IV-G).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use servo_redstone::{generators, simulate_sequence, Construct};

fn bench_step(c: &mut Criterion) {
    let mut group = c.benchmark_group("sc_step");
    for blocks in [64usize, 252, 484, 1000] {
        group.throughput(Throughput::Elements(1));
        group.bench_with_input(
            BenchmarkId::from_parameter(blocks),
            &blocks,
            |b, &blocks| {
                let blueprint = generators::dense_circuit(blocks);
                b.iter_batched(
                    || Construct::new(blueprint.clone()),
                    |mut construct| {
                        construct.step();
                        construct
                    },
                    criterion::BatchSize::SmallInput,
                );
            },
        );
    }
    group.finish();
}

fn bench_simulate_sequence(c: &mut Criterion) {
    let mut group = c.benchmark_group("sc_simulate_100_steps");
    for blocks in [252usize, 484] {
        group.bench_with_input(
            BenchmarkId::from_parameter(blocks),
            &blocks,
            |b, &blocks| {
                let blueprint = generators::dense_circuit(blocks);
                b.iter_batched(
                    || Construct::new(blueprint.clone()),
                    |mut construct| simulate_sequence(&mut construct, 100),
                    criterion::BatchSize::SmallInput,
                );
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_step, bench_simulate_sequence);
criterion_main!(benches);

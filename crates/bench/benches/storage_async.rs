//! Tick-visible storage cost: `SyncChunkService` (the pre-redesign
//! blocking path) versus `PipelinedChunkService` (worker-pool transfers)
//! under a 90/10 scan/edit workload with a moving view frontier.
//!
//! Both services execute the *same* request stream: per tick the player
//! frontier advances, chunks entering the view are submitted as demand
//! reads, the next columns are prefetched, 90% of the remaining actor
//! operations scan resident chunks and 10% edit world blocks, and
//! write-back/eviction run on their periodic cadence. What differs is
//! *where* the storage work executes:
//!
//! * sync — every request resolves inline on the tick thread: remote
//!   misses pay serialization, byte transfer bookkeeping, and chunk
//!   decoding right in the measured tick section;
//! * pipelined — submissions are batched per world shard and handed to a
//!   worker pool (sized by `ServerConfig::with_parallelism`), so the tick
//!   section pays only queue pushes and completion draining.
//!
//! The acceptance metric is the p99 of the *tick-visible storage section*
//! (wall time the tick thread spends issuing requests and harvesting
//! completions); the simulated read-stall latency both services impose on
//! the game loop is reported alongside. Results go to
//! `BENCH_storage_async.json` at the workspace root.
//!
//! Run with `cargo bench -p servo-bench --bench storage_async`; set
//! `SERVO_BENCH_FAST=1` (or pass `--fast`) for a smoke-test-sized run.

use std::sync::Arc;
use std::time::Instant;

use servo_pcg::{DefaultGenerator, TerrainGenerator};
use servo_server::ServerConfig;
use servo_simkit::SimRng;
use servo_storage::{
    BlobStore, BlobTier, ChunkOutcome, ChunkRequest, ChunkService, ObjectStore,
    PipelinedChunkService, SyncChunkService,
};
use servo_types::{BlockPos, ChunkPos, SimTime};
use servo_world::{Block, ShardedWorld};

/// Depth of the terrain band (chunks in z).
const ROWS: i32 = 6;
/// Columns resident around the player frontier.
const WINDOW: i32 = 10;
/// Columns prefetched ahead of the frontier.
const AHEAD: i32 = 2;
/// Actor operations per tick (90% scans, 10% edits).
const OPS_PER_TICK: usize = 40;
/// Ticks between write-back passes (1 s of virtual time at 20 Hz).
const WRITE_BACK_EVERY: u64 = 20;
/// Ticks between eviction passes.
const EVICT_EVERY: u64 = 10;

fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Seeds remote storage with `columns` columns of generated terrain.
fn seeded_remote(columns: i32) -> BlobStore {
    let generator = DefaultGenerator::new(2024);
    let mut remote = BlobStore::new(BlobTier::Standard, SimRng::seed(1));
    for x in 0..columns {
        for z in 0..ROWS {
            let chunk = generator.generate(ChunkPos::new(x, z));
            remote
                .write(&format!("terrain/{x}/{z}"), chunk.to_bytes(), SimTime::ZERO)
                .expect("seeding remote storage");
        }
    }
    remote
}

/// The world the edits land in: the full band pre-loaded flat, so edits
/// always hit loaded chunks regardless of read-arrival timing.
fn seeded_world(columns: i32) -> Arc<ShardedWorld> {
    let world = ShardedWorld::flat(4);
    for x in 0..columns {
        for z in 0..ROWS {
            world.ensure_chunk_at(ChunkPos::new(x, z));
        }
    }
    Arc::new(world)
}

#[derive(Debug, Default)]
struct RunStats {
    /// Wall time of each tick's storage section, in nanoseconds.
    section_ns: Vec<u64>,
    /// Simulated latency the game loop observed per loaded read, in ms.
    sim_read_ms: Vec<f64>,
    loaded: usize,
    wrote_back: usize,
    evicted: usize,
}

/// Drives `service` through the full workload and measures the per-tick
/// storage section on the calling ("tick") thread.
fn run_workload(service: &mut impl ChunkService, world: &ShardedWorld, ticks: u64) -> RunStats {
    let columns = frontier_at(ticks) + WINDOW + AHEAD + 2;
    let mut stats = RunStats::default();
    let mut rng_state = 0x5eed_u64;
    let mut requested_cols = 0i32;
    for tick in 0..ticks {
        let now = SimTime::from_millis(tick * 50);
        let frontier = frontier_at(tick);
        let window_lo = (frontier - WINDOW + 1).max(0);

        // ---- measured storage section of this tick --------------------
        let started = Instant::now();
        for completion in service.poll(now) {
            if let ChunkOutcome::Loaded { latency, .. } = completion.outcome {
                stats.loaded += 1;
                stats.sim_read_ms.push(latency.as_millis_f64());
            }
        }
        // Demand reads for columns entering the view.
        while requested_cols <= frontier {
            for z in 0..ROWS {
                service.submit(ChunkRequest::read(ChunkPos::new(requested_cols, z)));
            }
            requested_cols += 1;
        }
        // Prefetch the columns ahead of the frontier.
        let prefetch: Vec<ChunkPos> = (1..=AHEAD)
            .flat_map(|d| (0..ROWS).map(move |z| ChunkPos::new(frontier + d, z)))
            .collect();
        service.submit(ChunkRequest::prefetch(prefetch));
        // 90/10 scan/edit actor operations over the resident window.
        for op in 0..OPS_PER_TICK {
            let r = splitmix(&mut rng_state);
            let x = window_lo + (r % (frontier - window_lo + 1).max(1) as u64) as i32;
            let z = ((r >> 16) % ROWS as u64) as i32;
            if op % 10 < 9 {
                service.submit(ChunkRequest::read(ChunkPos::new(x, z)));
            } else {
                let base = ChunkPos::new(x, z).min_block();
                let bx = base.x + ((r >> 24) % 16) as i32;
                let bz = base.z + ((r >> 32) % 16) as i32;
                let by = ((r >> 40) % 60) as i32 + 8;
                let block = if r.is_multiple_of(2) {
                    Block::Stone
                } else {
                    Block::Lamp
                };
                let _ = world.set_block(BlockPos::new(bx, by, bz), block);
            }
        }
        if tick % EVICT_EVERY == EVICT_EVERY - 1 {
            let keep: Vec<ChunkPos> = (window_lo..=frontier + AHEAD)
                .flat_map(|x| (0..ROWS).map(move |z| ChunkPos::new(x, z)))
                .collect();
            service.submit(ChunkRequest::evict(keep));
        }
        if tick % WRITE_BACK_EVERY == WRITE_BACK_EVERY - 1 {
            service.submit(ChunkRequest::write_back());
        }
        for completion in service.poll(now) {
            match completion.outcome {
                ChunkOutcome::Loaded { latency, .. } => {
                    stats.loaded += 1;
                    stats.sim_read_ms.push(latency.as_millis_f64());
                }
                ChunkOutcome::WroteBack { chunks } => stats.wrote_back += chunks,
                ChunkOutcome::Evicted { chunks } => stats.evicted += chunks,
                _ => {}
            }
        }
        stats.section_ns.push(started.elapsed().as_nanos() as u64);
        // ---- rest of the tick (constructs, avatars, networking) -------
        // Unmeasured: gives background workers the same slack a real 50 ms
        // tick budget would.
        std::thread::sleep(std::time::Duration::from_micros(200));
    }
    let _ = columns;
    // Unmeasured settling pass: harvest everything still in flight so the
    // delivered-read counters are comparable across services.
    let end = SimTime::from_millis(ticks * 50) + servo_types::SimDuration::from_secs(1_000);
    let mut idle = 0;
    for _ in 0..200_000 {
        let completions = service.poll(end);
        let empty = completions.is_empty();
        for completion in completions {
            match completion.outcome {
                ChunkOutcome::Loaded { .. } => stats.loaded += 1,
                ChunkOutcome::WroteBack { chunks } => stats.wrote_back += chunks,
                ChunkOutcome::Evicted { chunks } => stats.evicted += chunks,
                _ => {}
            }
        }
        if empty && service.pending() == 0 {
            idle += 1;
            if idle >= 500 {
                break;
            }
        } else {
            idle = 0;
        }
        std::thread::yield_now();
    }
    stats
}

/// The frontier column at `tick`: one column every three ticks.
fn frontier_at(tick: u64) -> i32 {
    WINDOW - 1 + (tick / 3) as i32
}

fn percentile(sorted: &[u64], q: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let idx = ((sorted.len() - 1) as f64 * q).round() as usize;
    sorted[idx]
}

fn percentile_f64(values: &mut [f64], q: f64) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    values.sort_by(|a, b| a.partial_cmp(b).unwrap());
    values[((values.len() - 1) as f64 * q).round() as usize]
}

struct Report {
    service: &'static str,
    p50_us: f64,
    p99_us: f64,
    max_us: f64,
    sim_read_p50_ms: f64,
    sim_read_p99_ms: f64,
    loaded: usize,
    wrote_back: usize,
    hit_rate: f64,
    effective_hit_rate: f64,
}

fn report(service: &'static str, mut stats: RunStats, hit: f64, effective: f64) -> Report {
    stats.section_ns.sort_unstable();
    Report {
        service,
        p50_us: percentile(&stats.section_ns, 0.5) as f64 / 1_000.0,
        p99_us: percentile(&stats.section_ns, 0.99) as f64 / 1_000.0,
        max_us: *stats.section_ns.last().unwrap_or(&0) as f64 / 1_000.0,
        sim_read_p50_ms: percentile_f64(&mut stats.sim_read_ms, 0.5),
        sim_read_p99_ms: percentile_f64(&mut stats.sim_read_ms, 0.99),
        loaded: stats.loaded,
        wrote_back: stats.wrote_back,
        hit_rate: hit,
        effective_hit_rate: effective,
    }
}

/// The full-length (1200-tick) numbers recorded by this bench *before* the
/// pipelined service's core was sharded (one mutex-guarded core: workers
/// overlapped the tick thread but not each other). Kept in the JSON so the
/// worker-overlap improvement of the per-shard segments stays visible.
const PRE_SHARDING_SYNC_P99_US: f64 = 10_823.6;
const PRE_SHARDING_PIPELINED_P99_US: f64 = 229.8;

fn main() {
    let fast = std::env::var("SERVO_BENCH_FAST")
        .map(|v| v != "0")
        .unwrap_or(false)
        || std::env::args().any(|a| a == "--fast");
    let ticks: u64 = if fast { 240 } else { 1200 };
    let columns = frontier_at(ticks) + WINDOW + AHEAD + 2;
    let workers = ServerConfig::servo_base().with_parallelism(4).parallelism;

    println!(
        "storage_async: {columns}x{ROWS} chunk band, {OPS_PER_TICK} actor ops/tick (90% scans), \
         {ticks} ticks, {workers} transfer workers{}",
        if fast { " (fast mode)" } else { "" }
    );

    // Baseline: the synchronous adapter (inline remote misses).
    let sync_report = {
        let world = seeded_world(columns);
        let mut service = SyncChunkService::new(seeded_remote(columns), SimRng::seed(2))
            .with_world(Arc::clone(&world));
        let stats = run_workload(&mut service, &world, ticks);
        let cache = service.stats();
        report("sync", stats, cache.hit_rate(), cache.effective_hit_rate())
    };

    // The pipelined service: transfers on the worker pool (sized by the
    // config but clamped to the machine's cores).
    let (pipelined_report, effective_workers) = {
        let world = seeded_world(columns);
        let mut service =
            PipelinedChunkService::new(seeded_remote(columns), SimRng::seed(2), workers)
                .with_world(Arc::clone(&world));
        let effective = service.worker_count();
        let stats = run_workload(&mut service, &world, ticks);
        let cache = service.stats();
        (
            report(
                "pipelined",
                stats,
                cache.hit_rate(),
                cache.effective_hit_rate(),
            ),
            effective,
        )
    };

    println!(
        "{:>10} {:>12} {:>12} {:>12} {:>14} {:>14} {:>8}",
        "service", "p50 [us]", "p99 [us]", "max [us]", "sim p50 [ms]", "sim p99 [ms]", "loaded"
    );
    for r in [&sync_report, &pipelined_report] {
        println!(
            "{:>10} {:>12.1} {:>12.1} {:>12.1} {:>14.3} {:>14.3} {:>8}",
            r.service, r.p50_us, r.p99_us, r.max_us, r.sim_read_p50_ms, r.sim_read_p99_ms, r.loaded
        );
    }

    let ratio = if pipelined_report.p99_us > 0.0 {
        sync_report.p99_us / pipelined_report.p99_us
    } else {
        f64::INFINITY
    };
    let met = ratio >= 2.0;

    let mut json = String::from("{\n");
    json.push_str("  \"bench\": \"storage_async\",\n");
    json.push_str(&format!(
        "  \"workload\": {{\"columns\": {columns}, \"rows\": {ROWS}, \"ticks\": {ticks}, \
         \"ops_per_tick\": {OPS_PER_TICK}, \"scan_fraction\": 0.9, \"workers\": {workers}, \
         \"workers_effective\": {effective_workers}}},\n"
    ));
    json.push_str(&format!("  \"fast_mode\": {fast},\n"));
    json.push_str("  \"results\": [\n");
    for (i, r) in [&sync_report, &pipelined_report].iter().enumerate() {
        json.push_str(&format!(
            "    {{\"service\": \"{}\", \"tick_section_p50_us\": {:.1}, \"tick_section_p99_us\": {:.1}, \
             \"tick_section_max_us\": {:.1}, \"sim_read_p50_ms\": {:.3}, \"sim_read_p99_ms\": {:.3}, \
             \"loaded\": {}, \"write_backs\": {}, \"hit_rate\": {:.4}, \"effective_hit_rate\": {:.4}}}{}\n",
            r.service,
            r.p50_us,
            r.p99_us,
            r.max_us,
            r.sim_read_p50_ms,
            r.sim_read_p99_ms,
            r.loaded,
            r.wrote_back,
            r.hit_rate,
            r.effective_hit_rate,
            if i == 0 { "," } else { "" }
        ));
    }
    json.push_str("  ],\n");
    // The single-mutex-core numbers this sharded-core run supersedes (only
    // comparable against full-length runs).
    let overlap_gain = if fast || pipelined_report.p99_us <= 0.0 {
        0.0
    } else {
        PRE_SHARDING_PIPELINED_P99_US / pipelined_report.p99_us
    };
    json.push_str(&format!(
        "  \"previous_single_mutex_core\": {{\"sync_p99_us\": {PRE_SHARDING_SYNC_P99_US:.1}, \
         \"pipelined_p99_us\": {PRE_SHARDING_PIPELINED_P99_US:.1}, \
         \"note\": \"pre-sharding core: workers overlapped the tick thread but not each other\"}},\n"
    ));
    json.push_str(&format!(
        "  \"worker_overlap\": {{\"sharded_pipelined_p99_us\": {:.1}, \
         \"gain_vs_single_mutex_core\": {overlap_gain:.2}, \
         \"workers_effective\": {effective_workers}, \"comparable\": {}, \
         \"note\": \"segment overlap needs >1 core; the pool clamps to available_parallelism\"}},\n",
        pipelined_report.p99_us, !fast
    ));
    json.push_str(&format!(
        "  \"acceptance\": {{\"metric\": \"p99 tick-visible storage section\", \
         \"sync_p99_us\": {:.1}, \"pipelined_p99_us\": {:.1}, \"ratio\": {ratio:.2}, \
         \"target\": 2.0, \"met\": {met}}}\n",
        sync_report.p99_us, pipelined_report.p99_us
    ));
    json.push_str("}\n");

    let out_path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("bench crate sits two levels below the workspace root")
        .join("BENCH_storage_async.json");
    std::fs::write(&out_path, &json).expect("BENCH_storage_async.json must be writable");
    println!(
        "wrote {} (p99 tick-visible storage section: sync {:.1} us vs pipelined {:.1} us, {ratio:.1}x)",
        out_path.display(),
        sync_report.p99_us,
        pipelined_report.p99_us
    );
}

//! Real-CPU benchmark of procedural chunk generation (the work a terrain
//! generation function performs per invocation, Figure 11).

use criterion::{criterion_group, criterion_main, Criterion};
use servo_pcg::{DefaultGenerator, FlatGenerator, Perlin, TerrainGenerator};
use servo_types::ChunkPos;

fn bench_generators(c: &mut Criterion) {
    let default_gen = DefaultGenerator::new(7);
    let flat_gen = FlatGenerator::default();
    let mut group = c.benchmark_group("chunk_generation");
    group.bench_function("default_world", |b| {
        let mut i = 0i32;
        b.iter(|| {
            i += 1;
            default_gen.generate(ChunkPos::new(i, -i))
        })
    });
    group.bench_function("flat_world", |b| {
        let mut i = 0i32;
        b.iter(|| {
            i += 1;
            flat_gen.generate(ChunkPos::new(i, -i))
        })
    });
    group.finish();
}

fn bench_noise(c: &mut Criterion) {
    let noise = Perlin::new(3);
    c.bench_function("perlin_fbm_sample", |b| {
        let mut x = 0.0f64;
        b.iter(|| {
            x += 0.37;
            noise.fbm(x, -x * 0.5, 5, 0.004)
        })
    });
}

fn bench_serialization(c: &mut Criterion) {
    let chunk = DefaultGenerator::new(7).generate(ChunkPos::new(3, 3));
    let bytes = chunk.to_bytes();
    let mut group = c.benchmark_group("chunk_serialization");
    group.bench_function("to_bytes", |b| b.iter(|| chunk.to_bytes()));
    group.bench_function("from_bytes", |b| {
        b.iter(|| servo_world::Chunk::from_bytes(&bytes).unwrap())
    });
    group.finish();
}

criterion_group!(benches, bench_generators, bench_noise, bench_serialization);
criterion_main!(benches);

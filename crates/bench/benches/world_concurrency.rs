//! Concurrency benchmark matrix for the world layer.
//!
//! Three storage designs run the same tick-shaped actor workload:
//!
//! * **mutex** — the seed's single-map design (one `Mutex` around one
//!   `World`, accessed through its per-block API), the continuity baseline;
//! * **rwlock** — `ShardedWorld` over its default [`RwLockStore`] backend
//!   (one `RwLock<HashMap>` per shard);
//! * **lockfree_scc** — `ShardedWorld` over [`LockFreeStore`], the
//!   cell-locked scc-style map (lock-free lookups, per-chunk entry locks).
//!
//! The sharded backends sweep a full matrix: thread count (1/2/4/8) ×
//! read/write mix (100%/90%/50% scans) × key skew (uniform vs zipf-1.1
//! hotspot over the chunk grid, sampled through
//! `servo_workload::KeySkew` so every backend replays byte-identical
//! schedules). Workload shape per operation: a *scan* reads a 32-block
//! chunk-local region (avatar view / construct neighbourhood), an *edit*
//! writes an 8-block column (player build action).
//!
//! Baseline locking model: the single-lock server releases the global lock
//! between individual block calls — what a game loop serving many
//! concurrent actors must do for fairness. The sharded backends instead
//! hold one chunk/shard handle per batch (`read_chunk` / `set_blocks`),
//! which is the design delta the matrix quantifies.
//!
//! Results land in `BENCH_world_shard.json` at the workspace root:
//! the mutex baseline rows, every matrix cell, and a hardware-aware
//! acceptance block (full parallel-speedup targets engage when the host
//! has >= 8 cores; on smaller hosts the same metrics are gated against
//! honest serial floors, and the JSON records which mode was used).
//!
//! Run with `cargo bench -p servo-bench --bench world_concurrency`; set
//! `SERVO_BENCH_FAST=1` (or pass `--fast`) for a smoke-test-sized run.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Instant;

use servo_simkit::SimRng;
use servo_types::{BlockPos, ChunkPos};
use servo_workload::{KeySkew, SkewKind};
use servo_world::store::ChunkStore;
use servo_world::{Block, LockFreeStore, RwLockStore, ShardedWorld, World};

/// Side length of the pre-loaded chunk grid.
const GRID_CHUNKS: i32 = 16;

/// Blocks read by one scan operation.
const SCAN_BLOCKS: usize = 32;

/// Blocks written by one edit operation.
const EDIT_BLOCKS: usize = 8;

const THREAD_COUNTS: [usize; 4] = [1, 2, 4, 8];

/// Scan share of the operation mix, in tenths (10 = read-only).
const MIXES: [u64; 3] = [10, 9, 5];

/// The mix the headline acceptance metrics are read from (90% scans — MVE
/// tick workloads are read-dominated).
const ACCEPT_MIX: u64 = 9;

const SKEWS: [SkewKind; 2] = [SkewKind::Uniform, SkewKind::Zipf { exponent: 1.1 }];

fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// One pre-generated actor operation: an anchor block inside some chunk.
#[derive(Clone, Copy)]
struct ActorOp {
    /// Anchor position (chunk-interior so the whole scan/edit span stays in
    /// one chunk, as chunk-local game logic does).
    anchor: BlockPos,
    /// Whether this is a scan (read) or an edit (write).
    scan: bool,
}

/// Pre-generates one thread's operation schedule so RNG cost stays out of
/// the measured loop. The *chunk* is drawn from the configured skew through
/// a dedicated `SimRng` sub-stream (deterministic per `(mix, skew,
/// thread)`), the in-chunk coordinates from a splitmix counter — every
/// backend replays the exact same schedule.
fn schedule(thread_id: usize, ops: u64, scan_tenths: u64, skew: SkewKind) -> Vec<ActorOp> {
    let rng = SimRng::seed(0x5eed)
        .substream(&format!("world-bench-{scan_tenths}-{}", skew.label()))
        .substream_indexed("thread", thread_id as u64);
    let mut keys = KeySkew::new(skew, (GRID_CHUNKS * GRID_CHUNKS) as usize, rng);
    let mut state = 0xc0ffee ^ ((thread_id as u64) << 32);
    (0..ops)
        .map(|op| {
            let key = keys.sample() as i32;
            let (cx, cz) = (key % GRID_CHUNKS, key / GRID_CHUNKS);
            let r = splitmix(&mut state);
            let lx = ((r >> 16) % 14) as i32 + 1;
            let lz = ((r >> 24) % 14) as i32 + 1;
            let y = ((r >> 32) % 64) as i32 + 1;
            ActorOp {
                anchor: BlockPos::new(cx * 16 + lx, y, cz * 16 + lz),
                scan: op % 10 < scan_tenths,
            }
        })
        .collect()
}

fn populated_world() -> World {
    let mut world = World::flat(4);
    for cx in 0..GRID_CHUNKS {
        for cz in 0..GRID_CHUNKS {
            world.ensure_chunk_at(ChunkPos::new(cx, cz));
        }
    }
    world
}

/// Block positions touched by a scan: a 32-block vertical span above the
/// anchor (wrapping inside the chunk height is unnecessary: y <= 65 + 32).
fn scan_span(anchor: BlockPos) -> impl Iterator<Item = BlockPos> {
    (0..SCAN_BLOCKS as i32).map(move |dy| BlockPos::new(anchor.x, anchor.y + dy, anchor.z))
}

/// Block positions touched by an edit: an 8-block vertical column above the
/// anchor (chunk-local, like the scan).
fn edit_span(anchor: BlockPos) -> impl Iterator<Item = BlockPos> {
    (0..EDIT_BLOCKS as i32).map(move |dy| BlockPos::new(anchor.x, anchor.y + dy, anchor.z))
}

fn block_ops(schedules: &[Vec<ActorOp>]) -> u64 {
    schedules
        .iter()
        .flatten()
        .map(|op| {
            if op.scan {
                SCAN_BLOCKS as u64
            } else {
                EDIT_BLOCKS as u64
            }
        })
        .sum()
}

/// Runs the actor schedule against the world behind a single global mutex
/// through the seed's per-block API; returns aggregate block operations per
/// second.
fn run_mutex(threads: usize, ops_per_thread: u64, scan_tenths: u64, skew: SkewKind) -> f64 {
    let world = Mutex::new(populated_world());
    let sink = AtomicU64::new(0);
    let schedules: Vec<Vec<ActorOp>> = (0..threads)
        .map(|t| schedule(t, ops_per_thread, scan_tenths, skew))
        .collect();
    let total = block_ops(&schedules);
    let start = Instant::now();
    std::thread::scope(|scope| {
        for ops in &schedules {
            let world = &world;
            let sink = &sink;
            scope.spawn(move || {
                let mut acc = 0u64;
                for op in ops {
                    if op.scan {
                        for pos in scan_span(op.anchor) {
                            // Lock per block call: the single global lock
                            // must be released between calls to keep other
                            // actors live.
                            let guard = world.lock().unwrap();
                            acc ^= guard.block(pos).map(|b| b.id()).unwrap_or(0) as u64;
                        }
                    } else {
                        for pos in edit_span(op.anchor) {
                            let mut guard = world.lock().unwrap();
                            let _ = guard.set_block(pos, Block::Stone);
                        }
                    }
                }
                sink.fetch_xor(acc, Ordering::Relaxed);
            });
        }
    });
    let elapsed = start.elapsed().as_secs_f64();
    std::hint::black_box(sink.load(Ordering::Relaxed));
    total as f64 / elapsed
}

/// The same actor schedule against a sharded world over backend `B`, using
/// its per-chunk batch accessors; returns aggregate block operations per
/// second.
fn run_sharded<B: ChunkStore>(
    threads: usize,
    ops_per_thread: u64,
    scan_tenths: u64,
    skew: SkewKind,
) -> f64 {
    let world = ShardedWorld::<B>::from_world(populated_world());
    let sink = AtomicU64::new(0);
    let schedules: Vec<Vec<ActorOp>> = (0..threads)
        .map(|t| schedule(t, ops_per_thread, scan_tenths, skew))
        .collect();
    let total = block_ops(&schedules);
    let start = Instant::now();
    std::thread::scope(|scope| {
        for ops in &schedules {
            let world = &world;
            let sink = &sink;
            scope.spawn(move || {
                let mut acc = 0u64;
                let mut edits: Vec<(BlockPos, Block)> = Vec::with_capacity(EDIT_BLOCKS);
                for op in ops {
                    if op.scan {
                        let anchor = op.anchor;
                        // One chunk/shard read handle for the whole
                        // chunk-local scan.
                        let sum = world
                            .read_chunk(ChunkPos::from(anchor), |chunk| {
                                let mut sum = 0u64;
                                for pos in scan_span(anchor) {
                                    let (lx, lz) = (pos.x & 15, pos.z & 15);
                                    sum ^= chunk.local(lx, pos.y, lz).map(|b| b.id()).unwrap_or(0)
                                        as u64;
                                }
                                sum
                            })
                            .unwrap_or(0);
                        acc ^= sum;
                    } else {
                        // One batch writer for the whole edit.
                        edits.clear();
                        edits.extend(edit_span(op.anchor).map(|p| (p, Block::Stone)));
                        let _ = world.set_blocks(edits.iter().copied());
                    }
                }
                sink.fetch_xor(acc, Ordering::Relaxed);
            });
        }
    });
    let elapsed = start.elapsed().as_secs_f64();
    std::hint::black_box(sink.load(Ordering::Relaxed));
    total as f64 / elapsed
}

/// One measured matrix cell.
struct Cell {
    backend: &'static str,
    threads: usize,
    scan_tenths: u64,
    skew: SkewKind,
    blocks_per_sec: f64,
}

fn find(cells: &[Cell], backend: &str, threads: usize, scan_tenths: u64, skew: SkewKind) -> f64 {
    cells
        .iter()
        .find(|c| {
            c.backend == backend
                && c.threads == threads
                && c.scan_tenths == scan_tenths
                && c.skew == skew
        })
        .map(|c| c.blocks_per_sec)
        .expect("matrix cell was measured")
}

fn main() {
    let fast = std::env::var("SERVO_BENCH_FAST")
        .map(|v| v != "0")
        .unwrap_or(false)
        || std::env::args().any(|a| a == "--fast");
    let ops_per_thread: u64 = if fast { 6_000 } else { 40_000 };
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    // Full parallel-speedup targets only make sense when the host can run
    // the 8-thread configurations in parallel; on smaller hosts the same
    // metrics are gated against serial floors (threads time-slice one
    // core, so cross-thread speedups are physically capped at ~1.0 and
    // the gate instead asserts that nothing collapses under
    // oversubscription).
    let parallel_targets = cores >= 8;

    // Warm up allocator and page cache so the first configuration is not
    // penalised.
    run_sharded::<RwLockStore>(1, ops_per_thread / 10, ACCEPT_MIX, SkewKind::Uniform);
    run_sharded::<LockFreeStore>(1, ops_per_thread / 10, ACCEPT_MIX, SkewKind::Uniform);
    run_mutex(1, ops_per_thread / 10, ACCEPT_MIX, SkewKind::Uniform);

    println!(
        "world_concurrency: {GRID_CHUNKS}x{GRID_CHUNKS} chunks, scans of {SCAN_BLOCKS} blocks, \
         edits of {EDIT_BLOCKS} blocks, {ops_per_thread} actor ops/thread, {cores} cores{}",
        if fast { " (fast mode)" } else { "" }
    );

    // Continuity baseline: the seed's global-mutex world on the headline
    // mix, across the thread counts.
    let mut baseline = Vec::new();
    println!("{:>8} {:>20}", "threads", "mutex blocks/s");
    for &threads in &THREAD_COUNTS {
        let bps = run_mutex(threads, ops_per_thread, ACCEPT_MIX, SkewKind::Uniform);
        println!("{threads:>8} {bps:>20.0}");
        baseline.push((threads, bps));
    }

    // The backend x threads x mix x skew matrix.
    let mut cells: Vec<Cell> = Vec::new();
    println!(
        "{:>13} {:>8} {:>6} {:>9} {:>20}",
        "backend", "threads", "scan%", "skew", "blocks/s"
    );
    for &scan_tenths in &MIXES {
        for &skew in &SKEWS {
            for &threads in &THREAD_COUNTS {
                let rwlock = run_sharded::<RwLockStore>(threads, ops_per_thread, scan_tenths, skew);
                let lockfree =
                    run_sharded::<LockFreeStore>(threads, ops_per_thread, scan_tenths, skew);
                for (backend, bps) in [(RwLockStore::NAME, rwlock), (LockFreeStore::NAME, lockfree)]
                {
                    println!(
                        "{backend:>13} {threads:>8} {:>6} {:>9} {bps:>20.0}",
                        scan_tenths * 10,
                        skew.label()
                    );
                    cells.push(Cell {
                        backend,
                        threads,
                        scan_tenths,
                        skew,
                        blocks_per_sec: bps,
                    });
                }
            }
        }
    }

    let max_threads = *THREAD_COUNTS.last().unwrap();
    let uniform = SkewKind::Uniform;
    let hot = SKEWS[1];

    // Headline metrics (90% scans, uniform unless stated).
    let rwlock_at_max = find(&cells, RwLockStore::NAME, max_threads, ACCEPT_MIX, uniform);
    let lockfree_at_max = find(
        &cells,
        LockFreeStore::NAME,
        max_threads,
        ACCEPT_MIX,
        uniform,
    );
    let lockfree_vs_rwlock = lockfree_at_max / rwlock_at_max;
    let read_scaling = find(&cells, LockFreeStore::NAME, max_threads, 10, uniform)
        / find(&cells, LockFreeStore::NAME, 2, 10, uniform);
    let mutex_at_max = baseline
        .iter()
        .find(|(t, _)| *t == max_threads)
        .map(|(_, bps)| *bps)
        .unwrap();
    let sharded_vs_mutex = rwlock_at_max / mutex_at_max;
    let lockfree_hot_vs_rwlock_hot =
        find(&cells, LockFreeStore::NAME, max_threads, ACCEPT_MIX, hot)
            / find(&cells, RwLockStore::NAME, max_threads, ACCEPT_MIX, hot);

    // Hardware-aware targets: the full tentpole targets on a parallel
    // host, honest non-collapse floors on a serial one.
    let (lockfree_target, scaling_target) = if parallel_targets {
        (1.5, 1.5)
    } else {
        (0.5, 0.4)
    };
    // The mutex comparison is also hardware-sensitive: on a parallel host
    // the sharded backend must win big (3x), while on a serial host the
    // win is per-op efficiency only (no cross-thread parallelism) and
    // short fast-mode runs add noise, so the floor asserts a clear but
    // modest advantage over the global mutex.
    let mutex_speedup_target = if parallel_targets { 3.0 } else { 1.5 };
    let met = lockfree_vs_rwlock >= lockfree_target
        && read_scaling >= scaling_target
        && sharded_vs_mutex >= mutex_speedup_target;

    println!(
        "lockfree/rwlock @{max_threads}t 90% scans: {lockfree_vs_rwlock:.2}x (target {lockfree_target}); \
         lockfree read scaling 2->{max_threads}t: {read_scaling:.2}x (target {scaling_target}); \
         rwlock/mutex @{max_threads}t: {sharded_vs_mutex:.2}x (target {mutex_speedup_target}); met: {met}"
    );

    let mut json = String::from("{\n");
    json.push_str("  \"bench\": \"world_concurrency\",\n");
    json.push_str(&format!("  \"grid_chunks\": {GRID_CHUNKS},\n"));
    json.push_str(&format!("  \"scan_blocks\": {SCAN_BLOCKS},\n"));
    json.push_str(&format!("  \"edit_blocks\": {EDIT_BLOCKS},\n"));
    json.push_str(&format!("  \"actor_ops_per_thread\": {ops_per_thread},\n"));
    json.push_str(&format!("  \"fast_mode\": {fast},\n"));
    json.push_str(&format!(
        "  \"hardware\": {{\"cores\": {cores}, \"parallel_targets\": {parallel_targets}}},\n"
    ));
    json.push_str("  \"baseline\": [\n");
    for (i, (threads, bps)) in baseline.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"backend\": \"mutex\", \"threads\": {threads}, \"scan_pct\": {}, \"skew\": \"uniform\", \"blocks_per_sec\": {bps:.0}}}{}\n",
            ACCEPT_MIX * 10,
            if i + 1 < baseline.len() { "," } else { "" }
        ));
    }
    json.push_str("  ],\n");
    json.push_str("  \"cells\": [\n");
    for (i, cell) in cells.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"backend\": \"{}\", \"threads\": {}, \"scan_pct\": {}, \"skew\": \"{}\", \"blocks_per_sec\": {:.0}}}{}\n",
            cell.backend,
            cell.threads,
            cell.scan_tenths * 10,
            cell.skew.label(),
            cell.blocks_per_sec,
            if i + 1 < cells.len() { "," } else { "" }
        ));
    }
    json.push_str("  ],\n");
    json.push_str("  \"summary\": {\n");
    json.push_str(&format!(
        "    \"rwlock_blocks_per_sec_at_max\": {rwlock_at_max:.0},\n"
    ));
    json.push_str(&format!(
        "    \"lockfree_blocks_per_sec_at_max\": {lockfree_at_max:.0},\n"
    ));
    json.push_str(&format!(
        "    \"lockfree_vs_rwlock_at_max\": {lockfree_vs_rwlock:.3},\n"
    ));
    json.push_str(&format!(
        "    \"lockfree_hot_vs_rwlock_hot_at_max\": {lockfree_hot_vs_rwlock_hot:.3},\n"
    ));
    json.push_str(&format!(
        "    \"lockfree_read_scaling_2_to_max\": {read_scaling:.3},\n"
    ));
    json.push_str(&format!(
        "    \"sharded_vs_mutex_speedup_at_max\": {sharded_vs_mutex:.3}\n"
    ));
    json.push_str("  },\n");
    json.push_str(&format!(
        "  \"acceptance\": {{\"threads\": {max_threads}, \"speedup\": {sharded_vs_mutex:.3}, \"target\": {mutex_speedup_target}, \
         \"lockfree_vs_rwlock\": {lockfree_vs_rwlock:.3}, \"lockfree_target\": {lockfree_target}, \
         \"read_scaling\": {read_scaling:.3}, \"scaling_target\": {scaling_target}, \
         \"parallel_targets\": {parallel_targets}, \"met\": {met}}}\n"
    ));
    json.push_str("}\n");
    // `cargo bench` runs with the package directory as CWD; anchor the
    // artifact at the workspace root so it lands in one predictable place.
    let out_path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("bench crate sits two levels below the workspace root")
        .join("BENCH_world_shard.json");
    std::fs::write(&out_path, &json).expect("BENCH_world_shard.json must be writable");
    println!("wrote {}", out_path.display());
}

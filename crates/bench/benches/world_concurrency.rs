//! Concurrency benchmark for the world layer: the seed's single-map design
//! (one `Mutex` around one `World`, accessed through its per-block API)
//! versus the sharded `ShardedWorld` with its per-chunk batch accessors,
//! under a tick-shaped actor workload from 1, 2, 4 and 8 threads.
//!
//! Workload shape: each actor operation is either a *scan* (read a 32-block
//! chunk-local region, what an avatar view or construct neighbourhood scan
//! does) or an *edit* (write 8 blocks of one chunk, what a player build
//! action does), 90% scans.
//!
//! Baseline locking model: the single-lock server releases the global lock
//! between individual block calls — exactly what a game loop serving many
//! concurrent actors must do for fairness, since holding the one lock for a
//! whole batch starves every other actor in the system. The sharded world
//! can afford to hold a lock across a whole chunk batch
//! (`read_chunk` / `set_blocks`) because that lock covers only `1/N` of the
//! key space — which, together with the FxHash shard maps, is precisely the
//! design delta this benchmark quantifies.
//!
//! The aggregate block-operation throughput (and the 8-thread speedup the
//! tentpole is accepted on) is written to `BENCH_world_shard.json` in the
//! current working directory.
//!
//! Run with `cargo bench -p servo-bench --bench world_concurrency`; set
//! `SERVO_BENCH_FAST=1` (or pass `--fast`) for a smoke-test-sized run.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Instant;

use servo_types::{BlockPos, ChunkPos};
use servo_world::{Block, ShardedWorld, World};

/// Side length of the pre-loaded chunk grid.
const GRID_CHUNKS: i32 = 16;

/// Fraction of actor operations that are scans, in tenths (9 = 90%). MVE
/// tick workloads are read-dominated: every avatar step and construct scan
/// reads terrain, while only player block events write it.
const SCAN_TENTHS: u64 = 9;

/// Blocks read by one scan operation.
const SCAN_BLOCKS: usize = 32;

/// Blocks written by one edit operation.
const EDIT_BLOCKS: usize = 8;

const THREAD_COUNTS: [usize; 4] = [1, 2, 4, 8];

fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// One pre-generated actor operation: an anchor block inside some chunk.
#[derive(Clone, Copy)]
struct ActorOp {
    /// Anchor position (chunk-interior so the whole scan/edit span stays in
    /// one chunk, as chunk-local game logic does).
    anchor: BlockPos,
    /// Whether this is a scan (read) or an edit (write).
    scan: bool,
}

/// Pre-generates the per-thread operation schedule so RNG cost stays out of
/// the measured loop.
fn schedule(thread_id: usize, ops: u64) -> Vec<ActorOp> {
    let mut state = 0x5eed ^ ((thread_id as u64) << 32);
    (0..ops)
        .map(|op| {
            let r = splitmix(&mut state);
            let cx = (r % GRID_CHUNKS as u64) as i32;
            let cz = ((r >> 8) % GRID_CHUNKS as u64) as i32;
            let lx = ((r >> 16) % 14) as i32 + 1;
            let lz = ((r >> 24) % 14) as i32 + 1;
            let y = ((r >> 32) % 64) as i32 + 1;
            ActorOp {
                anchor: BlockPos::new(cx * 16 + lx, y, cz * 16 + lz),
                scan: op % 10 < SCAN_TENTHS,
            }
        })
        .collect()
}

fn populated_world() -> World {
    let mut world = World::flat(4);
    for cx in 0..GRID_CHUNKS {
        for cz in 0..GRID_CHUNKS {
            world.ensure_chunk_at(ChunkPos::new(cx, cz));
        }
    }
    world
}

/// Block positions touched by a scan: a 32-block vertical span above the
/// anchor (wrapping inside the chunk height is unnecessary: y <= 65 + 32).
fn scan_span(anchor: BlockPos) -> impl Iterator<Item = BlockPos> {
    (0..SCAN_BLOCKS as i32).map(move |dy| BlockPos::new(anchor.x, anchor.y + dy, anchor.z))
}

/// Block positions touched by an edit: an 8-block vertical column above the
/// anchor (chunk-local, like the scan).
fn edit_span(anchor: BlockPos) -> impl Iterator<Item = BlockPos> {
    (0..EDIT_BLOCKS as i32).map(move |dy| BlockPos::new(anchor.x, anchor.y + dy, anchor.z))
}

/// Runs the actor schedule against the world behind a single global mutex
/// through the seed's per-block API; returns aggregate block operations per
/// second.
fn run_mutex(threads: usize, ops_per_thread: u64) -> f64 {
    let world = Mutex::new(populated_world());
    let sink = AtomicU64::new(0);
    let schedules: Vec<Vec<ActorOp>> = (0..threads).map(|t| schedule(t, ops_per_thread)).collect();
    let block_ops: u64 = schedules
        .iter()
        .flatten()
        .map(|op| {
            if op.scan {
                SCAN_BLOCKS as u64
            } else {
                EDIT_BLOCKS as u64
            }
        })
        .sum();
    let start = Instant::now();
    std::thread::scope(|scope| {
        for ops in &schedules {
            let world = &world;
            let sink = &sink;
            scope.spawn(move || {
                let mut acc = 0u64;
                for op in ops {
                    if op.scan {
                        for pos in scan_span(op.anchor) {
                            // Lock per block call: the single global lock
                            // must be released between calls to keep other
                            // actors live.
                            let guard = world.lock().unwrap();
                            acc ^= guard.block(pos).map(|b| b.id()).unwrap_or(0) as u64;
                        }
                    } else {
                        for pos in edit_span(op.anchor) {
                            let mut guard = world.lock().unwrap();
                            let _ = guard.set_block(pos, Block::Stone);
                        }
                    }
                }
                sink.fetch_xor(acc, Ordering::Relaxed);
            });
        }
    });
    let elapsed = start.elapsed().as_secs_f64();
    std::hint::black_box(sink.load(Ordering::Relaxed));
    block_ops as f64 / elapsed
}

/// The same actor schedule against the sharded world, using its per-chunk
/// batch accessors; returns aggregate block operations per second.
fn run_sharded(threads: usize, ops_per_thread: u64) -> f64 {
    let world = ShardedWorld::from(populated_world());
    let sink = AtomicU64::new(0);
    let schedules: Vec<Vec<ActorOp>> = (0..threads).map(|t| schedule(t, ops_per_thread)).collect();
    let block_ops: u64 = schedules
        .iter()
        .flatten()
        .map(|op| {
            if op.scan {
                SCAN_BLOCKS as u64
            } else {
                EDIT_BLOCKS as u64
            }
        })
        .sum();
    let start = Instant::now();
    std::thread::scope(|scope| {
        for ops in &schedules {
            let world = &world;
            let sink = &sink;
            scope.spawn(move || {
                let mut acc = 0u64;
                let mut edits: Vec<(BlockPos, Block)> = Vec::with_capacity(EDIT_BLOCKS);
                for op in ops {
                    if op.scan {
                        let anchor = op.anchor;
                        // One shard read lock for the whole chunk-local scan.
                        let sum = world
                            .read_chunk(ChunkPos::from(anchor), |chunk| {
                                let mut sum = 0u64;
                                for pos in scan_span(anchor) {
                                    let (lx, lz) = (pos.x & 15, pos.z & 15);
                                    sum ^= chunk.local(lx, pos.y, lz).map(|b| b.id()).unwrap_or(0)
                                        as u64;
                                }
                                sum
                            })
                            .unwrap_or(0);
                        acc ^= sum;
                    } else {
                        // One shard write lock for the whole edit batch.
                        edits.clear();
                        edits.extend(edit_span(op.anchor).map(|p| (p, Block::Stone)));
                        let _ = world.set_blocks(edits.iter().copied());
                    }
                }
                sink.fetch_xor(acc, Ordering::Relaxed);
            });
        }
    });
    let elapsed = start.elapsed().as_secs_f64();
    std::hint::black_box(sink.load(Ordering::Relaxed));
    block_ops as f64 / elapsed
}

fn main() {
    let fast = std::env::var("SERVO_BENCH_FAST")
        .map(|v| v != "0")
        .unwrap_or(false)
        || std::env::args().any(|a| a == "--fast");
    let ops_per_thread: u64 = if fast { 8_000 } else { 50_000 };

    // Warm up allocator and page cache so the first configuration is not
    // penalised.
    run_sharded(1, ops_per_thread / 10);
    run_mutex(1, ops_per_thread / 10);

    println!(
        "world_concurrency: {GRID_CHUNKS}x{GRID_CHUNKS} chunks, {}% scans of {SCAN_BLOCKS} blocks, \
         {}% edits of {EDIT_BLOCKS} blocks, {} actor ops/thread{}",
        SCAN_TENTHS * 10,
        (10 - SCAN_TENTHS) * 10,
        ops_per_thread,
        if fast { " (fast mode)" } else { "" }
    );
    println!(
        "{:>8} {:>20} {:>20} {:>9}",
        "threads", "mutex blocks/s", "sharded blocks/s", "speedup"
    );

    let mut rows = Vec::new();
    for &threads in &THREAD_COUNTS {
        let mutex_ops = run_mutex(threads, ops_per_thread);
        let sharded_ops = run_sharded(threads, ops_per_thread);
        let speedup = sharded_ops / mutex_ops;
        println!("{threads:>8} {mutex_ops:>20.0} {sharded_ops:>20.0} {speedup:>8.2}x");
        rows.push((threads, mutex_ops, sharded_ops, speedup));
    }

    let (_, _, _, speedup_at_8) = rows[rows.len() - 1];
    let mut json = String::from("{\n");
    json.push_str("  \"bench\": \"world_concurrency\",\n");
    json.push_str(&format!("  \"grid_chunks\": {GRID_CHUNKS},\n"));
    json.push_str(&format!(
        "  \"scan_fraction\": {},\n",
        SCAN_TENTHS as f64 / 10.0
    ));
    json.push_str(&format!("  \"scan_blocks\": {SCAN_BLOCKS},\n"));
    json.push_str(&format!("  \"edit_blocks\": {EDIT_BLOCKS},\n"));
    json.push_str(&format!("  \"actor_ops_per_thread\": {ops_per_thread},\n"));
    json.push_str(&format!("  \"fast_mode\": {fast},\n"));
    json.push_str("  \"results\": [\n");
    for (i, (threads, mutex_ops, sharded_ops, speedup)) in rows.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"threads\": {threads}, \"mutex_blocks_per_sec\": {mutex_ops:.0}, \"sharded_blocks_per_sec\": {sharded_ops:.0}, \"speedup\": {speedup:.3}}}{}\n",
            if i + 1 < rows.len() { "," } else { "" }
        ));
    }
    json.push_str("  ],\n");
    json.push_str(&format!(
        "  \"acceptance\": {{\"threads\": 8, \"speedup\": {speedup_at_8:.3}, \"target\": 3.0, \"met\": {}}}\n",
        speedup_at_8 >= 3.0
    ));
    json.push_str("}\n");
    // `cargo bench` runs with the package directory as CWD; anchor the
    // artifact at the workspace root so it lands in one predictable place.
    let out_path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("bench crate sits two levels below the workspace root")
        .join("BENCH_world_shard.json");
    std::fs::write(&out_path, &json).expect("BENCH_world_shard.json must be writable");
    println!(
        "wrote {} (8-thread speedup {speedup_at_8:.2}x)",
        out_path.display()
    );
}

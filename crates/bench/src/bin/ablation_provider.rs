//! Ablation: cloud provider characteristics. The paper evaluates Servo on
//! both AWS and Azure (Table I); this ablation compares AWS-like and
//! Azure-like function profiles for the SC-offload path and for terrain
//! generation, plus the player-perceived response time they translate to.

use servo_bench::{emit, scaled_secs};
use servo_core::{SpeculationConfig, SpeculativeScBackend};
use servo_faas::{FaasPlatform, FunctionConfig};
use servo_metrics::{response_summary, Summary, Table};
use servo_pcg::{DefaultGenerator, TerrainGenerator};
use servo_redstone::{generators, Construct};
use servo_server::ScBackend;
use servo_simkit::SimRng;
use servo_types::{ConstructId, MemoryMb, SimDuration, SimTime, Tick};

fn provider_config(name: &str) -> FunctionConfig {
    match name {
        "AWS" => FunctionConfig::aws_like(MemoryMb::new(2048)),
        _ => FunctionConfig::azure_like(),
    }
}

fn main() {
    let ticks = (scaled_secs(90).as_secs_f64() * 20.0) as u64;

    // 1. SC offloading: efficiency and invocation latency per provider.
    let mut sc_table = Table::new(vec![
        "Provider",
        "median efficiency",
        "median invocation latency [ms]",
        "p95 invocation latency [ms]",
        "cold starts",
    ]);
    for provider in ["AWS", "Azure"] {
        let platform = FaasPlatform::new(provider_config(provider), SimRng::seed(0xAB));
        let config = SpeculationConfig {
            tick_lead: 20,
            simulation_steps: 100,
            loop_detection: false,
            ..SpeculationConfig::default()
        };
        let mut backend = SpeculativeScBackend::new(config, platform);
        let mut construct = Construct::new(generators::paper_medium());
        for t in 0..ticks {
            backend.resolve(
                ConstructId::new(0),
                &mut construct,
                Tick(t),
                SimTime::from_millis(t * 50),
            );
        }
        let stats = backend.handle().stats();
        let latencies: Vec<f64> = stats
            .invocation_latencies
            .iter()
            .map(|d| d.as_millis_f64())
            .collect();
        let s = Summary::from_values(&latencies);
        sc_table.row(vec![
            provider.to_string(),
            format!("{:.2}", stats.median_efficiency().unwrap_or(0.0)),
            format!("{:.0}", s.p50),
            format!("{:.0}", s.p95),
            backend.handle().platform_stats().cold_starts.to_string(),
        ]);
    }
    emit(
        "ablation_provider_sc",
        "Ablation: SC offloading on AWS-like vs Azure-like functions",
        &sc_table,
    );

    // 2. Terrain generation latency per provider, and what a healthy 30 ms
    //    tick translates to in player response time per deployment region.
    let mut gen_table = Table::new(vec![
        "Provider",
        "mean chunk generation [ms]",
        "p95 [ms]",
        "response time p95 @ 20 ms RTT/2 [ms]",
        "actions over 100 ms threshold",
    ]);
    let generator = DefaultGenerator::new(5);
    for provider in ["AWS", "Azure"] {
        let mut platform = FaasPlatform::new(provider_config(provider), SimRng::seed(0xAC));
        let mut now = SimTime::ZERO;
        let mut latencies = Vec::new();
        for _ in 0..200 {
            let inv = platform
                .invoke(now, generator.cost().work_units)
                .expect("within timeout");
            now = inv.completed_at;
            latencies.push(inv.latency.as_millis_f64());
        }
        let s = Summary::from_values(&latencies);
        let healthy_ticks: Vec<SimDuration> =
            (0..2000).map(|_| SimDuration::from_millis(30)).collect();
        let response = response_summary(&healthy_ticks, 20.0);
        gen_table.row(vec![
            provider.to_string(),
            format!("{:.0}", s.mean),
            format!("{:.0}", s.p95),
            format!("{:.0}", response.summary.p95),
            format!("{:.3}", response.over_first_person),
        ]);
    }
    emit(
        "ablation_provider_generation",
        "Ablation: terrain generation on AWS-like vs Azure-like functions",
        &gen_table,
    );
}

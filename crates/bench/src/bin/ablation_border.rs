//! Ablation: **border-traffic minimization** — what the cross-zone seam
//! costs under each border-construct exchange mode, and what the
//! ownership-aware (border-traffic) rebalancing term buys on top.
//!
//! `ablation_hybrid` (BENCH_hybrid.json) establishes the hybrid baseline:
//! 4 zones, 160 border constructs, batched exchange, ~21 msgs/tick. This
//! binary sweeps the remaining axes on the same workload:
//!
//! * **exchange mode** — per-construct (classic), batched (one bundle per
//!   (owner, neighbour) pair), and speculative ([`BorderExchange::
//!   Speculative`]): the owner publishes one *handle* per re-invocation
//!   (sequence id, storage location, validity horizon) and neighbours
//!   replay the precomputed sequence from the shared substrate — zero
//!   seam traffic while the sequence stays valid, eager fallback when
//!   nothing is published;
//! * **construct count** (40 vs 160) and **zones** (2 vs 4);
//! * **ownership-aware migration** — constructs placed with the majority
//!   of their footprint across the seam (via [`seam_offset`]), measured
//!   with the border-traffic rebalance term off vs on: migrating each
//!   construct to its majority zone unifies seam ownership and collapses
//!   the bundled exchange pairs.
//!
//! Writes `results/ablation_border.csv` and the acceptance artefact
//! `BENCH_border.json` at the workspace root.

use servo_bench::{emit, scaled_secs};
use servo_core::{HybridDeployment, ServoDeployment};
use servo_metrics::{qos_satisfied_default, Summary, Table};
use servo_redstone::generators;
use servo_server::cluster::{
    border_construct_sites, place_across_east_seam_at, ShardedGameCluster,
};
use servo_server::BorderExchange;
use servo_simkit::SimRng;
use servo_types::{ChunkPos, SimDuration};
use servo_workload::{seam_offset, BehaviorKind, PlayerFleet};
use servo_world::{RebalanceConfig, RebalancePolicy, ShardMap};

/// Players (same construct-dominated scenario as `ablation_hybrid`).
const PLAYERS: usize = 60;
/// Border-spanning constructs in the headline arms.
const CONSTRUCTS: usize = 160;
/// Blocks of wire per border construct.
const CONSTRUCT_WIRES: usize = 14;
/// Zones in the headline arms.
const ZONES: usize = 4;

struct Arm {
    mean_ms: f64,
    p95_ms: f64,
    p99_ms: f64,
    qos_ok: bool,
    messages_per_tick: f64,
}

fn arm_from(durations: &[SimDuration], messages: u64, ticks: usize) -> Arm {
    let summary = Summary::from_durations(durations);
    Arm {
        mean_ms: summary.mean,
        p95_ms: summary.p95,
        p99_ms: summary.p99,
        qos_ok: qos_satisfied_default(durations),
        messages_per_tick: messages as f64 / ticks.max(1) as f64,
    }
}

/// Blueprints for `count` seam-spanning wire constructs. With `weighted`
/// placement each construct puts the strict majority of its blocks on
/// whichever side of its seam belongs to the *lower-indexed* zone — the
/// deterministic target the border-traffic term migrates towards, so that
/// traffic-driven migration unifies each seam's ownership.
fn border_fleet(map: &ShardMap, count: usize, weighted: bool) -> Vec<servo_redstone::Blueprint> {
    border_construct_sites(map, count)
        .into_iter()
        .map(|site| {
            let offset = if weighted {
                let east = map.zone_of_chunk(ChunkPos::new(site.x + 1, site.z));
                let west = map.zone_of_chunk(site);
                seam_offset(CONSTRUCT_WIRES, west < east)
            } else {
                8
            };
            place_across_east_seam_at(&generators::wire_line(CONSTRUCT_WIRES), site, 6, offset)
        })
        .collect()
}

fn bounded_fleet(seed: u64) -> PlayerFleet {
    let mut fleet = PlayerFleet::new(
        BehaviorKind::Bounded { radius: 24.0 },
        SimRng::seed(seed ^ 0x5eed),
    );
    fleet.connect_all(PLAYERS);
    fleet
}

/// The deterministic terrain-edit stream of `ablation_hybrid`: two block
/// edits per tick in the spawn area, identical across every arm.
struct EditStream {
    rng: SimRng,
}

impl EditStream {
    fn new(seed: u64) -> Self {
        EditStream {
            rng: SimRng::seed(seed).substream("terrain-edits"),
        }
    }

    fn next_events(&mut self) -> Vec<(servo_types::PlayerId, servo_workload::PlayerEvent)> {
        use servo_types::{BlockPos, PlayerId};
        use servo_workload::PlayerEvent;
        (0..2)
            .map(|_| {
                let x = (self.rng.unit() * 81.0) as i32 - 40;
                let z = (self.rng.unit() * 81.0) as i32 - 40;
                let pos = BlockPos::new(x, 9, z);
                let event = if self.rng.unit() < 0.5 {
                    PlayerEvent::BlockPlaced(pos)
                } else {
                    PlayerEvent::BlockBroken(pos)
                };
                let player = (self.rng.unit() * PLAYERS as f64) as u64;
                (PlayerId::new(player.min(PLAYERS as u64 - 1)), event)
            })
            .collect()
    }
}

fn drive_with_edits(
    cluster: &mut ShardedGameCluster,
    fleet: &mut PlayerFleet,
    edits: &mut EditStream,
    duration: SimDuration,
) -> Vec<servo_server::multi::ClusterTick> {
    let end = cluster.now() + duration;
    let budget = cluster.servers()[0].config().tick_budget();
    let mut ticks = Vec::new();
    while cluster.now() < end {
        let now = cluster.now();
        let mut events = fleet.tick(now, budget);
        events.extend(edits.next_events());
        let positions = fleet.positions();
        ticks.push(cluster.run_tick(&positions, &events));
    }
    ticks
}

/// A shard-term-inert policy whose border-traffic term evaluates every
/// five ticks after a short warmup — migrations all land inside the
/// warm-up window, so the measure window sees only their effect.
fn traffic_policy() -> RebalancePolicy {
    RebalancePolicy::new(RebalanceConfig {
        warmup_ticks: 20,
        evaluate_every: 5,
        cooldown_ticks: 1_000_000,
        trigger_ratio: 1e9,
        max_migrations_per_step: 8,
        border_traffic: true,
        ..RebalanceConfig::default()
    })
}

struct BorderRun {
    arm: Arm,
    construct_exchanges: u64,
    batched_bundles: u64,
    speculation_handles: u64,
    speculative_replays: u64,
    construct_migrations: u64,
    median_efficiency: f64,
}

#[allow(clippy::too_many_arguments)]
fn run_arm(
    seed: u64,
    zones: usize,
    constructs: usize,
    exchange: BorderExchange,
    weighted: bool,
    policy: Option<RebalancePolicy>,
    warmup: SimDuration,
    measure: SimDuration,
) -> BorderRun {
    let mut hybrid: HybridDeployment = ServoDeployment::builder()
        .seed(seed)
        .view_distance(32)
        .border_exchange(exchange)
        .hybrid(zones);
    if let Some(policy) = policy {
        hybrid.enable_rebalancing(policy);
    }
    for blueprint in border_fleet(&hybrid.cluster.shard_map().clone(), constructs, weighted) {
        hybrid.cluster.add_construct(blueprint);
    }
    let mut fleet = bounded_fleet(seed);
    let mut edits = EditStream::new(seed);
    drive_with_edits(&mut hybrid.cluster, &mut fleet, &mut edits, warmup);
    hybrid.cluster.discard_ticks();
    let before = hybrid.cluster.stats();
    let ticks = drive_with_edits(&mut hybrid.cluster, &mut fleet, &mut edits, measure);
    let after = hybrid.cluster.stats();
    let arm = arm_from(
        &hybrid.cluster.critical_path_durations(),
        after.cross_server_messages - before.cross_server_messages,
        ticks.len(),
    );
    BorderRun {
        arm,
        construct_exchanges: after.construct_exchanges - before.construct_exchanges,
        batched_bundles: after.batched_bundles - before.batched_bundles,
        speculation_handles: after.speculation_handles - before.speculation_handles,
        speculative_replays: after.speculative_replays - before.speculative_replays,
        construct_migrations: hybrid.cluster.rebalance_stats().construct_migrations,
        median_efficiency: hybrid
            .speculation_stats_total()
            .median_efficiency()
            .unwrap_or(0.0),
    }
}

fn main() {
    let warmup = scaled_secs(10);
    let measure = scaled_secs(20);
    let seed = 13;

    // Exchange-mode sweep on the headline 4-zone workload.
    let per_construct = run_arm(
        seed,
        ZONES,
        CONSTRUCTS,
        BorderExchange::PerConstruct,
        false,
        None,
        warmup,
        measure,
    );
    let batched = run_arm(
        seed,
        ZONES,
        CONSTRUCTS,
        BorderExchange::Batched,
        false,
        None,
        warmup,
        measure,
    );
    let speculative = run_arm(
        seed,
        ZONES,
        CONSTRUCTS,
        BorderExchange::Speculative,
        false,
        None,
        warmup,
        measure,
    );
    // Construct-count and zone-count corners of the sweep.
    let batched_40 = run_arm(
        seed,
        ZONES,
        40,
        BorderExchange::Batched,
        false,
        None,
        warmup,
        measure,
    );
    let speculative_40 = run_arm(
        seed,
        ZONES,
        40,
        BorderExchange::Speculative,
        false,
        None,
        warmup,
        measure,
    );
    let speculative_z2 = run_arm(
        seed,
        2,
        CONSTRUCTS,
        BorderExchange::Speculative,
        false,
        None,
        warmup,
        measure,
    );
    // Ownership-aware migration: weighted placement, batched exchange,
    // border-traffic term off vs on.
    let traffic_off = run_arm(
        seed,
        ZONES,
        CONSTRUCTS,
        BorderExchange::Batched,
        true,
        None,
        warmup,
        measure,
    );
    let traffic_on = run_arm(
        seed,
        ZONES,
        CONSTRUCTS,
        BorderExchange::Batched,
        true,
        Some(traffic_policy()),
        warmup,
        measure,
    );

    let mut table = Table::new(vec![
        "Arm",
        "mean tick [ms]",
        "p99 [ms]",
        "msgs/tick",
        "bundles",
        "handles",
        "replays",
        "QoS ok",
    ]);
    for (label, run) in [
        ("Per-construct (160c, 4z)", &per_construct),
        ("Batched (160c, 4z)", &batched),
        ("Speculative (160c, 4z)", &speculative),
        ("Batched (40c, 4z)", &batched_40),
        ("Speculative (40c, 4z)", &speculative_40),
        ("Speculative (160c, 2z)", &speculative_z2),
        ("Weighted batched, traffic off", &traffic_off),
        ("Weighted batched, traffic on", &traffic_on),
    ] {
        table.row(vec![
            label.to_string(),
            format!("{:.1}", run.arm.mean_ms),
            format!("{:.1}", run.arm.p99_ms),
            format!("{:.1}", run.arm.messages_per_tick),
            run.batched_bundles.to_string(),
            run.speculation_handles.to_string(),
            run.speculative_replays.to_string(),
            run.arm.qos_ok.to_string(),
        ]);
    }
    emit(
        "ablation_border",
        "Ablation: border exchange mode x construct count x zones, plus traffic-driven migration",
        &table,
    );

    let reduction_vs_batched = batched.arm.messages_per_tick / speculative.arm.messages_per_tick;
    let traffic_reduction = traffic_off.arm.messages_per_tick / traffic_on.arm.messages_per_tick;
    let p99_no_worse = speculative.arm.p99_ms <= batched.arm.p99_ms;
    let met = reduction_vs_batched >= 2.0
        && speculative.arm.qos_ok
        && p99_no_worse
        && traffic_on.construct_migrations > 0
        && traffic_on.arm.messages_per_tick < traffic_off.arm.messages_per_tick;

    let arm_json = |run: &BorderRun| {
        format!(
            "{{\"mean_ms\": {:.3}, \"p95_ms\": {:.3}, \"p99_ms\": {:.3}, \"qos_ok\": {}, \
             \"messages_per_tick\": {:.2}, \"construct_exchanges\": {}, \"batched_bundles\": {}, \
             \"speculation_handles\": {}, \"speculative_replays\": {}, \
             \"construct_migrations\": {}, \"median_speculation_efficiency\": {:.4}}}",
            run.arm.mean_ms,
            run.arm.p95_ms,
            run.arm.p99_ms,
            run.arm.qos_ok,
            run.arm.messages_per_tick,
            run.construct_exchanges,
            run.batched_bundles,
            run.speculation_handles,
            run.speculative_replays,
            run.construct_migrations,
            run.median_efficiency,
        )
    };
    let json = format!(
        "{{\n  \"experiment\": \"ablation_border\",\n  \
         \"workload\": {{\"players\": {PLAYERS}, \"border_constructs\": {CONSTRUCTS}, \
         \"zones\": {ZONES}, \"wire_blocks\": {CONSTRUCT_WIRES}}},\n  \
         \"per_construct\": {},\n  \
         \"batched\": {},\n  \
         \"speculative\": {},\n  \
         \"batched_40\": {},\n  \
         \"speculative_40\": {},\n  \
         \"speculative_2_zones\": {},\n  \
         \"traffic_off\": {},\n  \
         \"traffic_on\": {},\n  \
         \"acceptance\": {{\"reduction_vs_batched\": {:.3}, \"required_reduction\": 2.0, \
         \"speculative_qos_ok\": {}, \"speculative_p99_no_worse_than_batched\": {}, \
         \"traffic_migrations\": {}, \"traffic_reduction\": {:.3}, \"met\": {}}}\n}}\n",
        arm_json(&per_construct),
        arm_json(&batched),
        arm_json(&speculative),
        arm_json(&batched_40),
        arm_json(&speculative_40),
        arm_json(&speculative_z2),
        arm_json(&traffic_off),
        arm_json(&traffic_on),
        reduction_vs_batched,
        speculative.arm.qos_ok,
        p99_no_worse,
        traffic_on.construct_migrations,
        traffic_reduction,
        met,
    );
    let out_path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("bench crate sits two levels below the workspace root")
        .join("BENCH_border.json");
    std::fs::write(&out_path, &json).expect("BENCH_border.json must be writable");
    println!("[saved {}]", out_path.display());
    println!(
        "Speculative exchange cuts the seam from {:.1} to {:.1} msgs/tick ({reduction_vs_batched:.2}x) \
         on {CONSTRUCTS} border constructs at {ZONES} zones; traffic-driven migration of {} constructs \
         cuts the weighted batched seam {traffic_reduction:.2}x further (QoS {}).",
        batched.arm.messages_per_tick,
        speculative.arm.messages_per_tick,
        traffic_on.construct_migrations,
        if speculative.arm.qos_ok { "satisfied" } else { "violated" },
    );
}

//! Figure 13: inverse cumulative distribution of terrain-retrieval latency
//! for local storage, serverless storage, and serverless storage behind
//! Servo's cache with pre-fetching.
//!
//! The paper's MF5: the cache reduces the 99.9th-percentile latency of
//! serverless terrain reads from 226 ms to 34 ms, below one simulation step.

use servo_bench::{emit, scaled_secs};
use servo_core::{PrefetchPolicy, RemoteTerrainStore};
use servo_metrics::{ccdf_points, Summary, Table};
use servo_pcg::{DefaultGenerator, TerrainGenerator};
use servo_simkit::SimRng;
use servo_storage::{BlobStore, BlobTier, LocalDiskStore, ObjectStore};
use servo_types::{BlockPos, ChunkPos, SimDuration, SimTime};
use servo_workload::{BehaviorKind, PlayerFleet};

/// Pre-generates the terrain the walking players will traverse and writes it
/// into `store`, so every experiment reads previously persisted chunks.
fn seed_store<S: ObjectStore>(store: &mut S, radius_chunks: i32) {
    let generator = DefaultGenerator::new(1313);
    for x in -radius_chunks..=radius_chunks {
        for z in -radius_chunks..=radius_chunks {
            let chunk = generator.generate(ChunkPos::new(x, z));
            store
                .write(&format!("terrain/{x}/{z}"), chunk.to_bytes(), SimTime::ZERO)
                .expect("seeding storage");
        }
    }
}

/// Simulates eight players walking outward (S3) and reading the chunks that
/// enter their view; returns the observed read latencies in milliseconds.
fn walk_and_read(
    mut read: impl FnMut(ChunkPos, SimTime) -> Option<f64>,
    duration: SimDuration,
) -> Vec<f64> {
    let mut fleet = PlayerFleet::new(BehaviorKind::Star { speed: 3.0 }, SimRng::seed(0xF13));
    fleet.connect_all(8);
    let mut already_read = std::collections::HashSet::new();
    let mut latencies = Vec::new();
    let tick = SimDuration::from_millis(50);
    let mut now = SimTime::ZERO;
    while now.as_micros() < duration.as_micros() {
        now += tick;
        fleet.tick(now, tick);
        for pos in fleet.positions() {
            let view = servo_world::required_chunks(&[BlockPos::new(pos.x, 4, pos.z)], 64);
            for chunk in view {
                if already_read.insert(chunk) {
                    if let Some(latency) = read(chunk, now) {
                        latencies.push(latency);
                    }
                }
            }
        }
    }
    latencies
}

fn main() {
    let duration = scaled_secs(240);
    let radius = 48; // enough terrain for 8 players at 3 blocks/s
    let mut table = Table::new(vec![
        "terrain storage",
        "samples",
        "median [ms]",
        "p99 [ms]",
        "p99.9 [ms]",
        "max [ms]",
        "fraction > 50 ms",
    ]);
    let mut ccdf_table = Table::new(vec![
        "terrain storage",
        "latency [ms]",
        "fraction of operations >= latency",
    ]);

    // 1. Local storage.
    let mut local = LocalDiskStore::new(SimRng::seed(1));
    seed_store(&mut local, radius);
    let local_latencies = walk_and_read(
        |pos, now| {
            local
                .read(&format!("terrain/{}/{}", pos.x, pos.z), now)
                .ok()
                .map(|r| r.latency.as_millis_f64())
        },
        duration,
    );

    // 2. Serverless storage, accessed directly.
    let mut blob = BlobStore::new(BlobTier::Standard, SimRng::seed(2));
    seed_store(&mut blob, radius);
    let blob_latencies = walk_and_read(
        |pos, now| {
            blob.read(&format!("terrain/{}/{}", pos.x, pos.z), now)
                .ok()
                .map(|r| r.latency.as_millis_f64())
        },
        duration,
    );

    // 3. Serverless storage behind Servo's cache with pre-fetching.
    let mut remote = BlobStore::new(BlobTier::Standard, SimRng::seed(3));
    seed_store(&mut remote, radius);
    let mut cached = RemoteTerrainStore::new(
        remote,
        SimRng::seed(4),
        PrefetchPolicy {
            view_distance_blocks: 64,
            prefetch_margin_blocks: 48,
            eviction_margin_blocks: 96,
        },
    );
    let mut fleet_positions: Vec<BlockPos> = Vec::new();
    let cached_latencies = walk_and_read(
        |pos, now| {
            // Maintain the pre-fetch frontier around the player positions
            // observed so far this tick.
            fleet_positions.push(pos.min_block());
            if fleet_positions.len() > 8 {
                let start = fleet_positions.len() - 8;
                fleet_positions.drain(..start);
            }
            cached.maintain(&fleet_positions, now);
            cached
                .read(pos, now)
                .ok()
                .map(|r| r.latency.as_millis_f64())
        },
        duration,
    );

    // Discount the experiment-start transient (the first chunks around the
    // shared spawn point), which the paper attributes to cold starts when it
    // discusses its own outliers.
    let skip = |v: &Vec<f64>| -> Vec<f64> { v[150.min(v.len() / 2)..].to_vec() };
    let local_latencies = skip(&local_latencies);
    let blob_latencies = skip(&blob_latencies);
    let cached_latencies = skip(&cached_latencies);

    for (name, latencies) in [
        ("Local", &local_latencies),
        ("Serverless", &blob_latencies),
        ("Serverless+Cache", &cached_latencies),
    ] {
        let s = Summary::from_values(latencies);
        table.row(vec![
            name.to_string(),
            latencies.len().to_string(),
            format!("{:.1}", s.p50),
            format!("{:.1}", s.p99),
            format!("{:.1}", s.p999),
            format!("{:.0}", s.max),
            format!("{:.4}", Summary::fraction_above(latencies, 50.0)),
        ]);
        // A handful of CCDF points for the log-scale curve of Figure 13.
        for point in ccdf_points(latencies)
            .into_iter()
            .filter(|p| {
                [1.0, 0.1, 0.01, 0.001]
                    .iter()
                    .any(|f| (p.fraction - f).abs() / f < 0.25)
            })
            .take(12)
        {
            ccdf_table.row(vec![
                name.to_string(),
                format!("{:.1}", point.value),
                format!("{:.4}", point.fraction),
            ]);
        }
    }

    emit(
        "fig13_storage_icdf",
        "Figure 13: terrain retrieval latency for local and cloud storage",
        &table,
    );
    emit(
        "fig13_storage_ccdf_points",
        "Figure 13: selected points of the inverse CDF",
        &ccdf_table,
    );
}

//! Ablation: the distance-based pre-fetch policy of Servo's remote terrain
//! store (paper Section III-E). Sweeps the pre-fetch margin and reports the
//! latency tail and hit rate a walking player observes.

use servo_bench::{emit, scaled_secs};
use servo_core::{PrefetchPolicy, RemoteTerrainStore};
use servo_metrics::{percentile, Table};
use servo_pcg::{DefaultGenerator, TerrainGenerator};
use servo_simkit::SimRng;
use servo_storage::{BlobStore, BlobTier, ObjectStore};
use servo_types::{BlockPos, ChunkPos, SimTime};

fn seeded_remote(radius: i32, seed: u64) -> BlobStore {
    let generator = DefaultGenerator::new(2024);
    let mut remote = BlobStore::new(BlobTier::Standard, SimRng::seed(seed));
    for x in -radius..=radius {
        for z in -radius..=radius {
            let chunk = generator.generate(ChunkPos::new(x, z));
            remote
                .write(&format!("terrain/{x}/{z}"), chunk.to_bytes(), SimTime::ZERO)
                .expect("seed write");
        }
    }
    remote
}

fn main() {
    let walk_ticks = (scaled_secs(300).as_secs_f64() * 20.0) as u64;
    let mut table = Table::new(vec![
        "Pre-fetch margin [blocks]",
        "median read [ms]",
        "p99 [ms]",
        "p99.9 [ms]",
        "hit rate",
        "pre-fetches issued",
    ]);

    for margin in [0i32, 16, 48, 96] {
        let mut store = RemoteTerrainStore::new(
            seeded_remote(40, 9),
            SimRng::seed(10),
            PrefetchPolicy {
                view_distance_blocks: 64,
                prefetch_margin_blocks: margin,
                eviction_margin_blocks: 64,
            },
        );
        let mut latencies = Vec::new();
        let mut already_needed: std::collections::BTreeSet<ChunkPos> = Default::default();
        for tick in 0..walk_ticks {
            let now = SimTime::from_millis(tick * 50);
            let x = (tick as f64 * 0.15) as i32; // 3 blocks per second
            let player = [BlockPos::new(x, 4, 0)];
            store.maintain(&player, now);
            // Read every chunk the moment it enters the player's view
            // distance — exactly when the game loop needs it.
            for chunk in servo_world::required_chunks(&player, 64) {
                if already_needed.insert(chunk) {
                    if let Ok(read) = store.read(chunk, now) {
                        latencies.push(read.latency.as_millis_f64());
                    }
                }
            }
        }
        // Ignore the start-up transient, as the paper does.
        let steady = &latencies[100.min(latencies.len() / 2)..];
        table.row(vec![
            margin.to_string(),
            format!("{:.2}", percentile(steady, 0.5)),
            format!("{:.1}", percentile(steady, 0.99)),
            format!("{:.1}", percentile(steady, 0.999)),
            format!("{:.3}", store.stats().hit_rate()),
            store.stats().prefetches_issued.to_string(),
        ]);
    }
    emit(
        "ablation_cache_policy",
        "Ablation: pre-fetch margin vs terrain read latency tail",
        &table,
    );
    println!(
        "Without a pre-fetch margin reads race the storage tail; a margin of a few\n\
         chunks keeps the 99.9th percentile below one simulation step, reproducing\n\
         the paper's MF5 and showing where the benefit saturates."
    );
}

//! Figure 3: download latency (and variability) from serverless blob
//! storage for two types of game data (small player records vs large
//! terrain objects), on the Premium and Standard service tiers, compared to
//! the latency thresholds of FPS / RPG / RTS games.

use servo_bench::emit;
use servo_metrics::{Summary, Table};
use servo_simkit::SimRng;
use servo_storage::{BlobStore, BlobTier, ObjectStore};
use servo_types::consts;
use servo_types::SimTime;

fn main() {
    let samples_per_config = (2_000.0 * servo_bench::experiment_scale()) as usize;
    // Player records are small; terrain objects are region-sized blobs.
    let data_kinds = [("Player", 8 * 1024usize), ("Terrain", 2 * 1024 * 1024)];
    let tiers = [BlobTier::Premium, BlobTier::Standard];

    let mut table = Table::new(vec![
        "Game data",
        "Service",
        "median [ms]",
        "p95 [ms]",
        "p99 [ms]",
        "max [ms]",
        "> FPS threshold (100 ms)",
        "> RPG threshold (500 ms)",
    ]);
    for (label, size) in data_kinds {
        for tier in tiers {
            let mut store = BlobStore::new(tier, SimRng::seed(0xF163));
            store
                .write("object", vec![0u8; size], SimTime::ZERO)
                .expect("seed write");
            let mut now = SimTime::ZERO;
            let mut latencies = Vec::with_capacity(samples_per_config);
            for _ in 0..samples_per_config {
                let read = store.read("object", now).expect("object exists");
                now = read.completed_at;
                latencies.push(read.latency.as_millis_f64());
            }
            let s = Summary::from_values(&latencies);
            let frac_fps =
                Summary::fraction_above(&latencies, consts::FPS_LATENCY_THRESHOLD_MS as f64);
            let frac_rpg =
                Summary::fraction_above(&latencies, consts::RPG_LATENCY_THRESHOLD_MS as f64);
            table.row(vec![
                label.to_string(),
                match tier {
                    BlobTier::Premium => "Premium".to_string(),
                    BlobTier::Standard => "Standard".to_string(),
                },
                format!("{:.1}", s.p50),
                format!("{:.1}", s.p95),
                format!("{:.1}", s.p99),
                format!("{:.0}", s.max),
                format!("{:.3}", frac_fps),
                format!("{:.3}", frac_rpg),
            ]);
        }
    }
    emit(
        "fig03_storage_latency",
        "Figure 3: blob-storage download latency for player and terrain data",
        &table,
    );
}

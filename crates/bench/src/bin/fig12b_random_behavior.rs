//! Figure 12b: maximum supported players under the randomized behaviour R
//! (Table II), repeated across several seeds. The paper repeats this
//! experiment 20 times and reports that Servo supports slightly more players
//! than Opencraft, with somewhat higher variability.

use servo_bench::{
    emit, experiment_scale, measure_capacity, scaled_secs, ExperimentWorld, SystemKind,
};
use servo_metrics::{Summary, Table};
use servo_workload::BehaviorKind;

fn main() {
    let repetitions = ((5.0 * experiment_scale()).round() as usize).clamp(3, 20);
    let duration = scaled_secs(20);
    let player_counts: Vec<u32> = (1..=18).map(|i| i * 8).collect();
    let world = ExperimentWorld::default_world(64);

    let mut table = Table::new(vec![
        "Game",
        "repetitions",
        "min",
        "p25",
        "median",
        "mean",
        "p75",
        "max",
    ]);
    let mut per_rep = Table::new(vec!["Repetition", "Servo", "Opencraft"]);
    let mut per_rep_rows: Vec<(u32, u32)> = Vec::new();

    for kind in [SystemKind::Servo, SystemKind::Opencraft] {
        let mut maxima = Vec::new();
        for rep in 0..repetitions {
            let result = measure_capacity(
                kind,
                &world,
                BehaviorKind::Random,
                &player_counts,
                duration,
                0xF12B + rep as u64,
            );
            maxima.push(result.max_players as f64);
            if kind == SystemKind::Servo {
                per_rep_rows.push((result.max_players, 0));
            } else if let Some(row) = per_rep_rows.get_mut(rep) {
                row.1 = result.max_players;
            }
        }
        let s = Summary::from_values(&maxima);
        table.row(vec![
            kind.name().to_string(),
            repetitions.to_string(),
            format!("{:.0}", s.min),
            format!("{:.0}", s.p25),
            format!("{:.0}", s.p50),
            format!("{:.1}", s.mean),
            format!("{:.0}", s.p75),
            format!("{:.0}", s.max),
        ]);
    }
    for (i, (servo, opencraft)) in per_rep_rows.iter().enumerate() {
        per_rep.row(vec![
            (i + 1).to_string(),
            servo.to_string(),
            opencraft.to_string(),
        ]);
    }

    emit(
        "fig12b_random_behavior",
        "Figure 12b: maximum supported players, random behaviour R",
        &table,
    );
    emit(
        "fig12b_random_behavior_repetitions",
        "Figure 12b: per-repetition maxima",
        &per_rep,
    );
}

//! Ablation: the **hybrid zoned+offloading deployment** — zoning for
//! players and terrain, serverless offloading for constructs, per-zone
//! persistence — on the exact workload where plain zoning collapses.
//!
//! `ablation_multiserver` (BENCH_multiserver.json) shows that 4-zone
//! zoning speeds a player-only workload up >2x but buys ≤1.09x once 160
//! constructs span zone borders: every simulated tick pays per-construct
//! cross-zone state exchange, and the baselines simulate locally. The
//! extended technical report frames zoning *plus* offloading as the
//! deployment operators actually run; this binary measures it:
//!
//! * every zone server plugs in a `SpeculativeScBackend` over one
//!   **shared** FaaS platform (cluster-level concurrency and billing);
//! * border-construct state crosses seams **batched** per (owner,
//!   neighbour) server pair — offloaded speculative sequences ship as one
//!   bundle instead of one round-trip per construct;
//! * each zone persists its owned dirty shards through its own
//!   `PipelinedChunkService`, like `ServoDeployment` does.
//!
//! Writes `results/ablation_hybrid.csv` and the acceptance artefact
//! `BENCH_hybrid.json` (critical-path p99, msgs/tick,
//! invocations/minute) at the workspace root.

use servo_bench::{emit, scaled_secs};
use servo_core::{HybridDeployment, ServoDeployment};
use servo_metrics::{qos_satisfied_default, Summary, Table};
use servo_redstone::generators;
use servo_server::cluster::{border_construct_sites, place_across_east_seam, ShardedGameCluster};
use servo_server::ServerConfig;
use servo_simkit::SimRng;
use servo_types::SimDuration;
use servo_workload::{BehaviorKind, PlayerFleet};
use servo_world::ShardMap;

/// Players in the construct-dominated scenario (same as
/// `ablation_multiserver`).
const PLAYERS: usize = 60;
/// Border-spanning constructs (same as `ablation_multiserver`).
const CONSTRUCTS: usize = 160;
/// Blocks of wire per border construct.
const CONSTRUCT_WIRES: usize = 14;
/// Zones in the scaled-out arms.
const ZONES: usize = 4;

struct Arm {
    mean_ms: f64,
    p95_ms: f64,
    p99_ms: f64,
    qos_ok: bool,
    messages_per_tick: f64,
}

fn arm_from(durations: &[SimDuration], messages: u64, ticks: usize) -> Arm {
    let summary = Summary::from_durations(durations);
    Arm {
        mean_ms: summary.mean,
        p95_ms: summary.p95,
        p99_ms: summary.p99,
        qos_ok: qos_satisfied_default(durations),
        messages_per_tick: messages as f64 / ticks.max(1) as f64,
    }
}

fn border_fleet(map: &ShardMap) -> Vec<servo_redstone::Blueprint> {
    let reference = if map.zones() > 1 {
        map.clone()
    } else {
        ShardMap::contiguous(map.shard_count(), ZONES)
    };
    border_construct_sites(&reference, CONSTRUCTS)
        .into_iter()
        .map(|site| place_across_east_seam(&generators::wire_line(CONSTRUCT_WIRES), site, 6))
        .collect()
}

fn bounded_fleet(seed: u64) -> PlayerFleet {
    let mut fleet = PlayerFleet::new(
        BehaviorKind::Bounded { radius: 24.0 },
        SimRng::seed(seed ^ 0x5eed),
    );
    fleet.connect_all(PLAYERS);
    fleet
}

/// Deterministic terrain-edit stream layered on top of the bounded fleet:
/// every tick two players modify blocks in the (already loaded) spawn
/// area, so dirty shards, border-chunk mirroring, and the hybrid's
/// per-zone persistence pipelines are genuinely exercised. Every arm runs
/// the identical stream (same seed everywhere).
struct EditStream {
    rng: SimRng,
}

impl EditStream {
    fn new(seed: u64) -> Self {
        EditStream {
            rng: SimRng::seed(seed).substream("terrain-edits"),
        }
    }

    fn next_events(&mut self) -> Vec<(servo_types::PlayerId, servo_workload::PlayerEvent)> {
        use servo_types::{BlockPos, PlayerId};
        use servo_workload::PlayerEvent;
        (0..2)
            .map(|_| {
                let x = (self.rng.unit() * 81.0) as i32 - 40;
                let z = (self.rng.unit() * 81.0) as i32 - 40;
                let pos = BlockPos::new(x, 9, z);
                let event = if self.rng.unit() < 0.5 {
                    PlayerEvent::BlockPlaced(pos)
                } else {
                    PlayerEvent::BlockBroken(pos)
                };
                let player = (self.rng.unit() * PLAYERS as f64) as u64;
                (PlayerId::new(player.min(PLAYERS as u64 - 1)), event)
            })
            .collect()
    }
}

/// Drives `cluster` like `run_with_fleet`, appending the deterministic
/// edit stream to each tick's player events.
fn drive_with_edits(
    cluster: &mut ShardedGameCluster,
    fleet: &mut PlayerFleet,
    edits: &mut EditStream,
    duration: SimDuration,
) -> Vec<servo_server::multi::ClusterTick> {
    let end = cluster.now() + duration;
    let budget = cluster.servers()[0].config().tick_budget();
    let mut ticks = Vec::new();
    while cluster.now() < end {
        let now = cluster.now();
        let mut events = fleet.tick(now, budget);
        events.extend(edits.next_events());
        let positions = fleet.positions();
        ticks.push(cluster.run_tick(&positions, &events));
    }
    ticks
}

/// The plain zoned baseline arm (local simulation, per-construct
/// exchange) — re-measured here so the JSON is self-contained.
fn run_zoned(zones: usize, seed: u64, warmup: SimDuration, measure: SimDuration) -> Arm {
    let config = ServerConfig::opencraft().with_view_distance(32);
    let mut cluster = ShardedGameCluster::baseline(config, zones, seed);
    for blueprint in border_fleet(&cluster.shard_map().clone()) {
        cluster.add_construct(blueprint);
    }
    let mut fleet = bounded_fleet(seed);
    let mut edits = EditStream::new(seed);
    drive_with_edits(&mut cluster, &mut fleet, &mut edits, warmup);
    cluster.discard_ticks();
    let before = cluster.stats().cross_server_messages;
    let ticks = drive_with_edits(&mut cluster, &mut fleet, &mut edits, measure);
    arm_from(
        &cluster.critical_path_durations(),
        cluster.stats().cross_server_messages - before,
        ticks.len(),
    )
}

struct HybridRun {
    arm: Arm,
    invocations_per_minute: f64,
    median_efficiency: f64,
    /// Fraction of construct-ticks served by replaying a detected loop —
    /// the reason the steady-state invocation rate is low for periodic
    /// constructs.
    loop_replay_fraction: f64,
    chunks_flushed: u64,
    cost_usd: f64,
}

/// The hybrid arm: zoning + offloading + per-zone persistence.
fn run_hybrid(seed: u64, warmup: SimDuration, measure: SimDuration) -> HybridRun {
    let mut hybrid: HybridDeployment = ServoDeployment::builder()
        .seed(seed)
        .view_distance(32)
        .hybrid(ZONES);
    for blueprint in border_fleet(&hybrid.cluster.shard_map().clone()) {
        hybrid.cluster.add_construct(blueprint);
    }
    let mut fleet = bounded_fleet(seed);
    let mut edits = EditStream::new(seed);
    drive_with_edits(&mut hybrid.cluster, &mut fleet, &mut edits, warmup);
    hybrid.cluster.discard_ticks();
    let messages_before = hybrid.cluster.stats().cross_server_messages;
    let ticks = drive_with_edits(&mut hybrid.cluster, &mut fleet, &mut edits, measure);
    let arm = arm_from(
        &hybrid.cluster.critical_path_durations(),
        hybrid.cluster.stats().cross_server_messages - messages_before,
        ticks.len(),
    );
    // Lifetime rate (warm-up included): loop detection replays the wire
    // constructs after the initial invocations, so the steady-state window
    // alone would under-report what the deployment pays.
    let invocations = hybrid.sc_platform_stats().invocations;
    hybrid.flush_persistence();
    let speculation = hybrid.speculation_stats_total();
    let resolved =
        (speculation.speculative_applied + speculation.loop_replayed + speculation.local_fallback)
            .max(1);
    HybridRun {
        arm,
        invocations_per_minute: invocations as f64 / ((warmup + measure).as_secs_f64() / 60.0),
        median_efficiency: speculation.median_efficiency().unwrap_or(0.0),
        loop_replay_fraction: speculation.loop_replayed as f64 / resolved as f64,
        chunks_flushed: hybrid.persistence_stats().chunks_flushed,
        cost_usd: hybrid.sc_billing().total_cost_usd(),
    }
}

fn main() {
    let warmup = scaled_secs(10);
    let measure = scaled_secs(20);

    // One seed for every arm: the fleet walk and the edit stream are
    // identical, so the speedup ratios compare the same workload.
    let zoned_1 = run_zoned(1, 13, warmup, measure);
    let zoned_4 = run_zoned(ZONES, 13, warmup, measure);
    let hybrid = run_hybrid(13, warmup, measure);
    let zoned_speedup = zoned_1.mean_ms / zoned_4.mean_ms;
    let hybrid_speedup = zoned_1.mean_ms / hybrid.arm.mean_ms;

    let mut table = Table::new(vec![
        "Architecture",
        "mean tick [ms]",
        "p95 [ms]",
        "p99 [ms]",
        "msgs/tick",
        "QoS ok",
    ]);
    for (label, arm) in [
        ("Zoning (1 zone, local SC)", &zoned_1),
        ("Zoning (4 zones, local SC)", &zoned_4),
        ("Hybrid (4 zones + offloading)", &hybrid.arm),
    ] {
        table.row(vec![
            label.to_string(),
            format!("{:.1}", arm.mean_ms),
            format!("{:.1}", arm.p95_ms),
            format!("{:.1}", arm.p99_ms),
            format!("{:.1}", arm.messages_per_tick),
            arm.qos_ok.to_string(),
        ]);
    }
    emit(
        "ablation_hybrid",
        "Ablation: hybrid zoned+offloading vs plain zoning (160 border constructs)",
        &table,
    );

    // Acceptance: the hybrid meets QoS on the workload where plain zoning
    // collapsed, and actually beats the 1-zone baseline.
    let met = hybrid.arm.qos_ok && hybrid_speedup > zoned_speedup;
    let json = format!(
        "{{\n  \"experiment\": \"ablation_hybrid\",\n  \
         \"workload\": {{\"players\": {PLAYERS}, \"border_constructs\": {CONSTRUCTS}, \"zones\": {ZONES}}},\n  \
         \"zoned\": {{\"zones1_mean_ms\": {:.3}, \"zones4_mean_ms\": {:.3}, \"zones4_p99_ms\": {:.3}, \
         \"zones4_qos_ok\": {}, \"zones4_messages_per_tick\": {:.1}, \"speedup_4_zones\": {:.3}}},\n  \
         \"hybrid\": {{\"mean_ms\": {:.3}, \"p95_ms\": {:.3}, \"critical_path_p99_ms\": {:.3}, \
         \"qos_ok\": {}, \"messages_per_tick\": {:.1}, \"invocations_per_minute\": {:.1}, \
         \"median_speculation_efficiency\": {:.4}, \"loop_replay_fraction\": {:.4}, \
         \"chunks_flushed\": {}, \"sc_cost_usd\": {:.6}, \
         \"speedup_vs_1_zone\": {:.3}}},\n  \
         \"acceptance\": {{\"hybrid_qos_required\": true, \"hybrid_qos_ok\": {}, \
         \"hybrid_beats_plain_zoning\": {}, \"met\": {}}}\n}}\n",
        zoned_1.mean_ms,
        zoned_4.mean_ms,
        zoned_4.p99_ms,
        zoned_4.qos_ok,
        zoned_4.messages_per_tick,
        zoned_speedup,
        hybrid.arm.mean_ms,
        hybrid.arm.p95_ms,
        hybrid.arm.p99_ms,
        hybrid.arm.qos_ok,
        hybrid.arm.messages_per_tick,
        hybrid.invocations_per_minute,
        hybrid.median_efficiency,
        hybrid.loop_replay_fraction,
        hybrid.chunks_flushed,
        hybrid.cost_usd,
        hybrid_speedup,
        hybrid.arm.qos_ok,
        hybrid_speedup > zoned_speedup,
        met,
    );
    let out_path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("bench crate sits two levels below the workspace root")
        .join("BENCH_hybrid.json");
    std::fs::write(&out_path, &json).expect("BENCH_hybrid.json must be writable");
    println!("[saved {}]", out_path.display());
    println!(
        "Plain zoning buys {zoned_speedup:.2}x at {ZONES} zones on {CONSTRUCTS} border constructs; \
         the hybrid (offloading + batched exchange + per-zone persistence) runs the same workload at \
         {:.1} ms mean ({:.1} msgs/tick, {:.0} invocations/min), QoS {}.",
        hybrid.arm.mean_ms,
        hybrid.arm.messages_per_tick,
        hybrid.invocations_per_minute,
        if hybrid.arm.qos_ok { "satisfied" } else { "violated" },
    );
}

//! Ablation: the joint effect of tick lead and simulation length on the
//! *server*, not just on per-invocation efficiency (which Figure 8 covers):
//! local-fallback share of construct-ticks, tick-duration percentiles, and
//! offload cost for a construct-heavy instance.

use servo_bench::{emit, scaled_secs};
use servo_core::{ServoConfig, ServoDeployment, SpeculationConfig};
use servo_metrics::{Summary, Table};
use servo_redstone::generators;
use servo_server::ServerConfig;
use servo_simkit::SimRng;
use servo_workload::{BehaviorKind, PlayerFleet};

fn main() {
    let duration = scaled_secs(60);
    // Constructs large enough that one offloaded simulation takes several
    // ticks of latency — otherwise the tick lead has nothing to hide.
    let construct_blocks = 300usize;
    let constructs = 100usize;
    let players = 40usize;

    let mut table = Table::new(vec![
        "Tick lead",
        "Simulation steps",
        "local fallback share",
        "median tick [ms]",
        "p95 tick [ms]",
        "offload cost [$/h]",
    ]);

    for tick_lead in [0u64, 10, 20, 40] {
        for simulation_steps in [50usize, 100, 200] {
            let config = ServoConfig {
                server: ServerConfig::servo_base().with_view_distance(32),
                speculation: SpeculationConfig {
                    tick_lead,
                    simulation_steps,
                    loop_detection: false,
                    ..SpeculationConfig::default()
                },
                seed: 0x71c,
                ..ServoConfig::default()
            };
            let mut deployment = ServoDeployment::from_config(config);
            deployment
                .server
                .add_constructs(constructs, |_| generators::dense_circuit(construct_blocks));
            let mut fleet =
                PlayerFleet::new(BehaviorKind::Bounded { radius: 24.0 }, SimRng::seed(0x71d));
            fleet.connect_all(players);
            deployment.server.run_with_fleet(&mut fleet, duration);

            let stats = deployment.server.stats();
            let total = (stats.sc_local + stats.sc_merged + stats.sc_replayed).max(1) as f64;
            let fallback_share = stats.sc_local as f64 / total;
            let ticks = Summary::from_durations(&deployment.server.tick_durations());
            let cost = deployment.speculation.billing().cost_rate(duration).value();
            table.row(vec![
                tick_lead.to_string(),
                simulation_steps.to_string(),
                format!("{:.3}", fallback_share),
                format!("{:.1}", ticks.p50),
                format!("{:.1}", ticks.p95),
                format!("{:.4}", cost),
            ]);
        }
    }
    emit(
        "ablation_tick_lead",
        "Ablation: tick lead and simulation length vs fallback share, tick duration, and cost",
        &table,
    );
    println!(
        "Longer simulation lengths reduce the invocation rate (and cost) but make\n\
         each reply later; a tick lead of 10-20 ticks absorbs that latency, which\n\
         is exactly the trade-off behind the paper's Figures 8 and 9."
    );
}

//! Figure 7a: maximum number of supported players for an increasing number
//! of simulated constructs (0, 50, 100, 200), for Servo, Opencraft and
//! Minecraft.
//!
//! The paper's headline numbers (Section IV-B): with 100 constructs Servo
//! supports 150 players vs 10 (Opencraft) and 90 (Minecraft); with 200
//! constructs Servo supports 120 players while both baselines support none.

use servo_bench::{emit, measure_capacity, scaled_secs, ExperimentWorld, SystemKind};
use servo_metrics::Table;
use servo_workload::BehaviorKind;

fn main() {
    let sc_counts = [0usize, 50, 100, 200];
    let player_counts: Vec<u32> = (1..=20).map(|i| i * 10).collect();
    let duration = scaled_secs(30);
    let behavior = BehaviorKind::Bounded { radius: 24.0 };

    let mut table = Table::new(vec![
        "Simulated constructs",
        "Servo",
        "Opencraft",
        "Minecraft",
    ]);
    for &constructs in &sc_counts {
        let world = ExperimentWorld::flat_sc(constructs);
        let mut row = vec![constructs.to_string()];
        for kind in [
            SystemKind::Servo,
            SystemKind::Opencraft,
            SystemKind::Minecraft,
        ] {
            let result = measure_capacity(kind, &world, behavior, &player_counts, duration, 42);
            println!(
                "{:<10} {:>3} SCs -> max {:>3} players (evaluated {:?})",
                kind.name(),
                constructs,
                result.max_players,
                result
                    .evaluated
                    .iter()
                    .map(|(n, ok)| format!("{n}:{}", if *ok { "ok" } else { "x" }))
                    .collect::<Vec<_>>()
            );
            row.push(result.max_players.to_string());
        }
        table.row(row);
    }
    emit(
        "fig07a_max_players",
        "Figure 7a: maximum players supported vs number of simulated constructs",
        &table,
    );
}

//! Figure 11: serverless terrain generation on AWS-Lambda-like functions —
//! per-chunk generation latency (left) and the normalised
//! performance-to-cost ratio (right) for memory configurations from 320 MB
//! to 10240 MB.

use servo_bench::{emit, experiment_scale};
use servo_faas::{FaasPlatform, FunctionConfig};
use servo_metrics::{Summary, Table};
use servo_pcg::{DefaultGenerator, TerrainGenerator};
use servo_simkit::SimRng;
use servo_types::{MemoryMb, SimTime};

fn main() {
    let invocations = (150.0 * experiment_scale()) as usize;
    let generator = DefaultGenerator::new(99);
    let work = generator.cost().work_units;

    let mut rows = Vec::new();
    for memory in MemoryMb::PAPER_SWEEP {
        let mut platform = FaasPlatform::new(
            FunctionConfig::aws_like(memory),
            SimRng::seed(0xF11 + memory.as_mb() as u64),
        );
        let mut now = SimTime::ZERO;
        let mut latencies = Vec::with_capacity(invocations);
        for _ in 0..invocations {
            let inv = platform.invoke(now, work).expect("generation fits timeout");
            now = inv.completed_at;
            latencies.push(inv.latency.as_millis_f64() / 1000.0); // seconds
        }
        let s = Summary::from_values(&latencies);
        rows.push((memory, s));
    }

    // Normalised performance-to-cost ratio: 1 / (mean latency * memory),
    // scaled so the best configuration is 1.0 (the paper's Figure 11b).
    let ratios: Vec<f64> = rows
        .iter()
        .map(|(memory, s)| 1.0 / (s.mean * memory.as_gb()))
        .collect();
    let best = ratios.iter().cloned().fold(f64::MIN, f64::max);

    let mut table = Table::new(vec![
        "Memory [MB]",
        "mean latency [s]",
        "median [s]",
        "p95 [s]",
        "max [s]",
        "relative performance-to-cost",
    ]);
    for ((memory, s), ratio) in rows.iter().zip(ratios.iter()) {
        table.row(vec![
            memory.as_mb().to_string(),
            format!("{:.2}", s.mean),
            format!("{:.2}", s.p50),
            format!("{:.2}", s.p95),
            format!("{:.2}", s.max),
            format!("{:.2}", ratio / best),
        ]);
    }
    emit(
        "fig11_memory_scaling",
        "Figure 11: chunk generation latency and cost-efficiency vs function memory",
        &table,
    );
}

//! Table I: overview of the experiments and where each is reproduced,
//! plus the storage-cache effectiveness summary (raw hit rate vs the
//! effective hit rate that counts slow pre-fetch joins as misses).

use servo_core::{PrefetchPolicy, RemoteTerrainStore, ServoDeployment};
use servo_metrics::{report_table, StatsReport, Table};
use servo_pcg::{DefaultGenerator, TerrainGenerator};
use servo_redstone::generators;
use servo_server::cluster::{border_construct_sites, place_across_east_seam};
use servo_simkit::SimRng;
use servo_storage::{BlobStore, BlobTier, ObjectStore};
use servo_types::{BlockPos, ChunkPos, SimDuration, SimTime};
use servo_workload::{BehaviorKind, KeySkew, PlayerFleet, SkewKind};
use servo_world::{Block, ChunkStore, LockFreeStore, RwLockStore, ShardedWorld, World};

fn main() {
    let mut table = Table::new(vec![
        "Experiment",
        "Focus",
        "SC",
        "TG",
        "RS",
        "Players",
        "Behavior",
        "World",
        "Reproduced by",
    ]);
    let rows: Vec<[&str; 9]> = vec![
        [
            "IV-B (Fig. 7)",
            "SC: system scalability",
            "L+S",
            "L",
            "L",
            "10-200",
            "A",
            "flat",
            "fig07a_max_players / fig07b_tick_distribution",
        ],
        [
            "IV-C (Fig. 8, 9)",
            "SC: latency hiding",
            "L+S",
            "L",
            "L",
            "1",
            "-",
            "flat",
            "fig08_speculation_efficiency / fig09_function_latency",
        ],
        [
            "IV-D (Fig. 10, 11)",
            "TG: QoS",
            "-",
            "S",
            "L",
            "5",
            "Sinc",
            "default",
            "fig10_terrain_qos / fig11_memory_scaling",
        ],
        [
            "IV-E (Fig. 12)",
            "TG: system scalability",
            "-",
            "L+S",
            "L+S",
            "up to 50 / 100",
            "S3, S8, R",
            "default",
            "fig12a_terrain_scalability / fig12b_random_behavior",
        ],
        [
            "IV-F (Fig. 13)",
            "RS: perf. variability",
            "-",
            "-",
            "S",
            "8",
            "S3",
            "default",
            "fig13_storage_icdf",
        ],
        [
            "IV-G",
            "SC: function performance",
            "S",
            "-",
            "-",
            "1",
            "-",
            "flat",
            "sec4g_sc_performance",
        ],
        [
            "Fig. 1 / Fig. 3",
            "headline & storage motivation",
            "L+S",
            "L",
            "S",
            "10-200",
            "A",
            "flat",
            "fig01_headline / fig03_storage_latency",
        ],
    ];
    for row in rows {
        table.row(row.iter().map(|s| s.to_string()).collect());
    }
    servo_bench::emit(
        "table01_overview",
        "Table I: Overview of Experiments",
        &table,
    );

    emit_cache_effectiveness();
    emit_hybrid_overview();
    emit_platform_overview();
    emit_world_backend_overview();
}

/// Chunk grid side length for the world-backend rows (64 chunks — enough
/// for the zipf head to be a strict subset of the universe).
const BACKEND_GRID: i32 = 8;

/// What one backend run reports. The counters (not just the throughput)
/// are in the table so a backend that silently drops writes is visible in
/// the committed CSV, not only in the differential test suite.
struct BackendOutcome {
    block_ops_per_sec: f64,
    modifications: u64,
    loaded_chunks: usize,
}

/// Replays a deterministic 90%-scan / 10%-edit actor schedule (the
/// `world_concurrency` headline mix) against a sharded world over backend
/// `B`. The chunk sequence comes from a [`KeySkew`] sub-stream keyed only
/// by the skew label, so both backends see byte-identical schedules and
/// must end with identical counters.
fn run_world_backend<B: ChunkStore>(skew: SkewKind, ops: u64) -> BackendOutcome {
    let mut base = World::flat(4);
    for cx in 0..BACKEND_GRID {
        for cz in 0..BACKEND_GRID {
            base.ensure_chunk_at(ChunkPos::new(cx, cz));
        }
    }
    let world = ShardedWorld::<B>::from_world(base);
    let mut keys = KeySkew::new(
        skew,
        (BACKEND_GRID * BACKEND_GRID) as usize,
        SimRng::seed(0x7ab1e).substream(&format!("table01-backend-{}", skew.label())),
    );
    let mut coords = SimRng::seed(0x7ab1e).substream(&format!("table01-coords-{}", skew.label()));
    let mut sink = 0u64;
    let mut block_ops = 0u64;
    let start = std::time::Instant::now();
    for op in 0..ops {
        let key = keys.sample() as i32;
        let chunk = ChunkPos::new(key % BACKEND_GRID, key / BACKEND_GRID);
        let lx = (coords.unit() * 14.0) as i32 + 1;
        let lz = (coords.unit() * 14.0) as i32 + 1;
        let y = (coords.unit() * 64.0) as i32 + 1;
        if op % 10 < 9 {
            // Scan: one read handle over a 32-block chunk-local span.
            sink ^= world
                .read_chunk(chunk, |c| {
                    (0..32)
                        .map(|dy| c.local(lx, y + dy, lz).map(|b| b.id()).unwrap_or(0) as u64)
                        .fold(0u64, |acc, id| acc ^ id)
                })
                .unwrap_or(0);
            block_ops += 32;
        } else {
            // Edit: one batch writer over an 8-block column.
            let base_x = chunk.x * 16 + lx;
            let base_z = chunk.z * 16 + lz;
            world
                .set_blocks((0..8).map(|dy| (BlockPos::new(base_x, y + dy, base_z), Block::Stone)))
                .expect("edit targets a loaded chunk");
            block_ops += 8;
        }
    }
    let elapsed = start.elapsed().as_secs_f64().max(1e-9);
    std::hint::black_box(sink);
    BackendOutcome {
        block_ops_per_sec: block_ops as f64 / elapsed,
        modifications: world.total_modifications(),
        loaded_chunks: world.loaded_chunks(),
    }
}

/// The world-backend row(s): a compact serial slice of the
/// `world_concurrency` backend × skew matrix, replayed in-process so the
/// overview table carries the backend-equivalence evidence (identical
/// modification counters and loaded-chunk counts under identical
/// schedules) next to the throughput numbers. The full thread × mix ×
/// skew matrix with hardware-aware acceptance lives in
/// `BENCH_world_shard.json`.
fn emit_world_backend_overview() {
    let ops = (4_000.0 * servo_bench::experiment_scale()).max(500.0) as u64;
    let mut table = Table::new(vec![
        "Backend",
        "Skew",
        "block ops/s",
        "modifications",
        "loaded chunks",
        "matches rwlock",
    ]);
    for skew in [SkewKind::Uniform, SkewKind::Zipf { exponent: 1.1 }] {
        let rwlock = run_world_backend::<RwLockStore>(skew, ops);
        let lockfree = run_world_backend::<LockFreeStore>(skew, ops);
        let agrees = lockfree.modifications == rwlock.modifications
            && lockfree.loaded_chunks == rwlock.loaded_chunks;
        table.row(vec![
            RwLockStore::NAME.to_string(),
            skew.label(),
            format!("{:.0}", rwlock.block_ops_per_sec),
            rwlock.modifications.to_string(),
            rwlock.loaded_chunks.to_string(),
            "-".to_string(),
        ]);
        table.row(vec![
            LockFreeStore::NAME.to_string(),
            skew.label(),
            format!("{:.0}", lockfree.block_ops_per_sec),
            lockfree.modifications.to_string(),
            lockfree.loaded_chunks.to_string(),
            if agrees { "yes" } else { "NO" }.to_string(),
        ]);
    }
    servo_bench::emit(
        "table01_world_backend",
        "World backends: serial slice of the backend x skew matrix (full matrix in BENCH_world_shard.json)",
        &table,
    );
}

/// The serverless-platform row(s): cold-start rate, queue wait, and the
/// warm-idle share of the (idle-inclusive) bill per platform arm, on one
/// shared construct workload. The frictionless arm is the pre-platform
/// behaviour; the AWS-like arms add provisioning delay, a finite
/// keep-alive, and (in the capped arm) a container cap with a FIFO
/// request queue.
fn emit_platform_overview() {
    let arms: [(&str, servo_faas::PlatformConfig); 3] = [
        ("frictionless", servo_faas::PlatformConfig::frictionless()),
        ("aws-like", servo_faas::PlatformConfig::aws_like()),
        (
            "aws-like, cap 16 + queue",
            servo_faas::PlatformConfig::aws_like()
                .with_max_containers(16)
                .with_queue_capacity(256),
        ),
    ];
    let mut table = Table::new(vec![
        "Platform",
        "invocations",
        "cold-start rate",
        "mean queue wait [ms]",
        "peak queue",
        "warm-idle cost share",
    ]);
    for (label, platform) in arms {
        let mut hybrid = ServoDeployment::builder()
            .seed(2024)
            .view_distance(32)
            .speculation(servo_core::SpeculationConfig {
                loop_detection: false,
                ..servo_core::SpeculationConfig::default()
            })
            .sc_platform(platform)
            .hybrid(4);
        for site in border_construct_sites(hybrid.cluster.shard_map(), 48) {
            hybrid.cluster.add_construct(place_across_east_seam(
                &generators::wire_line(14),
                site,
                6,
            ));
        }
        let mut fleet = PlayerFleet::new(BehaviorKind::Random, SimRng::seed(7));
        fleet.connect_all(24);
        let seconds = servo_bench::scaled_secs(30).as_secs_f64().max(1.0) as u64;
        hybrid.run_with_fleet(&mut fleet, SimDuration::from_secs(seconds));
        let stats = hybrid.sc_platform_stats();
        let billing = hybrid.sc_billing_at(hybrid.cluster.now());
        let idle_share = if billing.total_cost_with_idle_usd() > 0.0 {
            billing.warm_idle_cost_usd() / billing.total_cost_with_idle_usd()
        } else {
            0.0
        };
        table.row(vec![
            label.to_string(),
            stats.invocations.to_string(),
            format!(
                "{:.4}",
                stats.cold_starts as f64 / stats.invocations.max(1) as f64
            ),
            format!("{:.3}", stats.queue_wait_ms / stats.queued.max(1) as f64),
            stats.peak_queue_depth.to_string(),
            format!("{idle_share:.4}"),
        ]);
    }
    servo_bench::emit(
        "table01_platform",
        "Serverless platform model: cold starts, queue wait, and warm-idle cost share per arm",
        &table,
    );
}

/// The hybrid zoned+offloading deployment's row(s): per-zone speculation
/// efficiency and per-zone persistence-cache effectiveness, so the paper
/// tables cover the deployment `ablation_hybrid` measures.
fn emit_hybrid_overview() {
    let zones = 4usize;
    let mut hybrid = ServoDeployment::builder()
        .seed(2024)
        .view_distance(32)
        // Continuously active speculation (as the capacity experiments
        // measure it): loop replay would trivially serve the synthetic
        // wire constructs and leave no efficiency samples to report.
        .speculation(servo_core::SpeculationConfig {
            loop_detection: false,
            ..servo_core::SpeculationConfig::default()
        })
        .hybrid(zones);
    for site in border_construct_sites(hybrid.cluster.shard_map(), 48) {
        hybrid
            .cluster
            .add_construct(place_across_east_seam(&generators::wire_line(14), site, 6));
    }
    // Random behaviour includes terrain edits, so the per-zone persistence
    // pipelines have dirty shards to flush.
    let mut fleet = PlayerFleet::new(BehaviorKind::Random, SimRng::seed(7));
    fleet.connect_all(24);
    let seconds = servo_bench::scaled_secs(30).as_secs_f64().max(1.0) as u64;
    hybrid.run_with_fleet(&mut fleet, SimDuration::from_secs(seconds));
    hybrid.flush_persistence();

    let mut table = Table::new(vec![
        "Zone",
        "SC efficiency (median)",
        "invocations",
        "cache hit rate",
        "effective hit rate",
        "chunks flushed",
    ]);
    for zone in 0..zones {
        let speculation = hybrid.speculation[zone].stats();
        let cache = hybrid
            .cluster
            .persistence_cache_stats(zone)
            .expect("hybrid zones persist");
        let persistence = hybrid
            .cluster
            .persistence_stats(zone)
            .expect("hybrid zones persist");
        table.row(vec![
            zone.to_string(),
            speculation
                .median_efficiency()
                .map(|e| format!("{e:.4}"))
                .unwrap_or_else(|| "-".to_string()),
            speculation.invocations.to_string(),
            format!("{:.4}", cache.hit_rate()),
            format!("{:.4}", cache.effective_hit_rate()),
            persistence.chunks_flushed.to_string(),
        ]);
    }
    let total = hybrid.speculation_stats_total();
    table.row(vec![
        "all (shared platform)".to_string(),
        total
            .median_efficiency()
            .map(|e| format!("{e:.4}"))
            .unwrap_or_else(|| "-".to_string()),
        hybrid.sc_platform_stats().invocations.to_string(),
        "-".to_string(),
        "-".to_string(),
        hybrid.persistence_stats().chunks_flushed.to_string(),
    ]);
    servo_bench::emit(
        "table01_hybrid",
        "Hybrid zoned+offloading deployment: per-zone speculation and persistence-cache effectiveness",
        &table,
    );

    // The deployment-wide counter dump: every subsystem stats struct
    // renders itself through the shared `StatsReport` trait, so this table
    // (and the replication ablation's) no longer hand-roll per-struct
    // formatting and new counters appear here without touching the bench.
    let cluster_stats = hybrid.cluster.stats();
    let rebalance = hybrid.cluster.rebalance_stats();
    let recovery = hybrid.cluster.recovery_stats();
    let speculation_total = hybrid.speculation_stats_total();
    let platform = hybrid.sc_platform_stats();
    let persistence = hybrid.persistence_stats();
    let reports: [&dyn StatsReport; 6] = [
        &cluster_stats,
        &rebalance,
        &recovery,
        &speculation_total,
        &platform,
        &persistence,
    ];
    servo_bench::emit(
        "table01_stats_report",
        "Unified subsystem counters (via the StatsReport trait)",
        &report_table(&reports),
    );
}

/// A short walking workload against the remote terrain store, reporting
/// both hit-rate views: `hit_rate` counts every pre-fetch join as a hit;
/// `effective_hit_rate` counts joins that still stalled the loop past one
/// simulation step as misses. The gap is the latency the raw rate hides.
fn emit_cache_effectiveness() {
    let generator = DefaultGenerator::new(2024);
    let mut remote = BlobStore::new(BlobTier::Standard, SimRng::seed(21));
    let radius = 24;
    for x in -radius..=radius {
        for z in -radius..=radius {
            let chunk = generator.generate(ChunkPos::new(x, z));
            // Pad each object to the multi-hundred-kilobyte terrain size
            // the paper measures (Figure 3) — run-length encoding shrinks
            // synthetic terrain far below the real on-the-wire regime, and
            // the slow-join asymmetry only appears when a transfer rivals
            // the 50 ms step. Trailing padding is ignored on restore.
            let mut bytes = chunk.to_bytes();
            bytes.resize(bytes.len().max(300_000), 0);
            remote
                .write(&format!("terrain/{x}/{z}"), bytes, SimTime::ZERO)
                .expect("seed write");
        }
    }

    let mut table = Table::new(vec![
        "Pre-fetch margin [blocks]",
        "reads",
        "hit rate",
        "effective hit rate",
        "slow joins",
    ]);
    for margin in [0i32, 48] {
        let mut store = RemoteTerrainStore::new(
            remote.clone(),
            SimRng::seed(22),
            PrefetchPolicy {
                view_distance_blocks: 64,
                prefetch_margin_blocks: margin,
                eviction_margin_blocks: 64,
            },
        );
        // Bound the walk so the player's view never leaves the seeded
        // terrain (radius 24 chunks = 384 blocks, view + margin ~70):
        // beyond that every read is NotFound and the ticks are wasted.
        let on_terrain_ticks = (((radius * 16 - 70) as f64) / 1.5) as u64;
        let walk_ticks =
            ((servo_bench::scaled_secs(120).as_secs_f64() * 20.0) as u64).min(on_terrain_ticks);
        let mut already_needed: std::collections::BTreeSet<ChunkPos> = Default::default();
        for tick in 0..walk_ticks {
            let now = SimTime::from_millis(tick * 50);
            let x = (tick as f64 * 1.5) as i32; // a sprinting player
            let player = [BlockPos::new(x, 4, 0)];
            store.maintain(&player, now);
            // Read every chunk the moment it enters the view distance —
            // exactly when the game loop needs it.
            for chunk in servo_world::required_chunks(&player, 64) {
                if already_needed.insert(chunk) {
                    let _ = store.read(chunk, now);
                }
            }
        }
        let stats = store.stats();
        table.row(vec![
            margin.to_string(),
            stats.total_reads().to_string(),
            format!("{:.4}", stats.hit_rate()),
            format!("{:.4}", stats.effective_hit_rate()),
            stats.slow_prefetch_joins.to_string(),
        ]);
    }
    servo_bench::emit(
        "table01_cache_effectiveness",
        "Storage cache effectiveness: raw vs effective hit rate",
        &table,
    );
}

//! Table I: overview of the experiments and where each is reproduced.

use servo_metrics::Table;

fn main() {
    let mut table = Table::new(vec![
        "Experiment",
        "Focus",
        "SC",
        "TG",
        "RS",
        "Players",
        "Behavior",
        "World",
        "Reproduced by",
    ]);
    let rows: Vec<[&str; 9]> = vec![
        [
            "IV-B (Fig. 7)",
            "SC: system scalability",
            "L+S",
            "L",
            "L",
            "10-200",
            "A",
            "flat",
            "fig07a_max_players / fig07b_tick_distribution",
        ],
        [
            "IV-C (Fig. 8, 9)",
            "SC: latency hiding",
            "L+S",
            "L",
            "L",
            "1",
            "-",
            "flat",
            "fig08_speculation_efficiency / fig09_function_latency",
        ],
        [
            "IV-D (Fig. 10, 11)",
            "TG: QoS",
            "-",
            "S",
            "L",
            "5",
            "Sinc",
            "default",
            "fig10_terrain_qos / fig11_memory_scaling",
        ],
        [
            "IV-E (Fig. 12)",
            "TG: system scalability",
            "-",
            "L+S",
            "L+S",
            "up to 50 / 100",
            "S3, S8, R",
            "default",
            "fig12a_terrain_scalability / fig12b_random_behavior",
        ],
        [
            "IV-F (Fig. 13)",
            "RS: perf. variability",
            "-",
            "-",
            "S",
            "8",
            "S3",
            "default",
            "fig13_storage_icdf",
        ],
        [
            "IV-G",
            "SC: function performance",
            "S",
            "-",
            "-",
            "1",
            "-",
            "flat",
            "sec4g_sc_performance",
        ],
        [
            "Fig. 1 / Fig. 3",
            "headline & storage motivation",
            "L+S",
            "L",
            "S",
            "10-200",
            "A",
            "flat",
            "fig01_headline / fig03_storage_latency",
        ],
    ];
    for row in rows {
        table.row(row.iter().map(|s| s.to_string()).collect());
    }
    servo_bench::emit(
        "table01_overview",
        "Table I: Overview of Experiments",
        &table,
    );
}

//! Ablation: **dynamic zone rebalancing under hotspot load** — the cost of
//! a static `ShardMap` when players pile into one zone, and what shard
//! migration buys back.
//!
//! The workload is the cluster-level worst case the paper's zoning model
//! cannot answer: every player converges on a handful of chunks that all
//! belong to *one* zone (but different world shards), so one server
//! simulates the whole fleet while its three peers idle. The static arm
//! rides that skew for the whole measurement; the rebalanced arm runs the
//! same cluster with a `RebalancePolicy` that watches per-zone load and
//! per-shard heat and migrates the hot shards apart — quiescing per-zone
//! persistence, transferring chunks and constructs, re-routing avatars —
//! with every migration message charged to both endpoint servers.
//!
//! Both arms share one seed, one fleet walk and one timeline:
//!
//! 1. *settle* — players wander at spawn while terrain provisions;
//! 2. *adapt* — players walk to the hotspot and dwell; the policy (if
//!    any) detects the skew and fires its migration storm here;
//! 3. *measure* — steady-state window whose critical-path p99 the
//!    acceptance compares (`SERVO_EXPERIMENT_SCALE` scales this window);
//! 4. *disperse* — players walk home (handoffs back, lifetime stats only).
//!
//! Writes `results/ablation_rebalance.csv` and the acceptance artefact
//! `BENCH_rebalance.json` (static vs rebalanced p99, migration-storm cost
//! accounting) at the workspace root.

use servo_bench::{emit, experiment_scale, scaled_secs};
use servo_metrics::{qos_satisfied_default, Summary, Table};
use servo_redstone::generators;
use servo_server::cluster::{zone_hotspot_sites, RebalanceStats, ShardedGameCluster};
use servo_server::ServerConfig;
use servo_simkit::SimRng;
use servo_types::{BlockPos, SimDuration, SimTime};
use servo_workload::{BehaviorKind, Hotspot, PlayerFleet};
use servo_world::{RebalanceConfig, RebalancePolicy};

/// Players converging on the hotspot.
const PLAYERS: usize = 200;
/// Hotspot chunks — all owned by zone 0 initially, each in its own shard,
/// so migration can actually split the load instead of relocating it.
const HOTSPOT_SITES: usize = 4;
/// Constructs pinned inside each hotspot chunk (they migrate with it).
const CONSTRUCTS_PER_SITE: usize = 2;
/// Zones in both arms.
const ZONES: usize = 4;
/// The zone the hotspot initially belongs to.
const HOT_ZONE: usize = 0;
const SEED: u64 = 17;

struct Arm {
    mean_ms: f64,
    p95_ms: f64,
    p99_ms: f64,
    qos_ok: bool,
    messages_per_tick: f64,
    /// Mean (over measured ticks) of the busiest zone's avatar count —
    /// the skew the policy is supposed to dissolve.
    max_zone_players_mean: f64,
    /// Peak critical-path tick during the adapt window (the migration
    /// storm lands here for the rebalanced arm).
    adapt_peak_ms: f64,
    /// Migrations applied during the adapt window.
    adapt_migrations: u64,
    /// Migrations that landed inside the measured window (expected zero:
    /// the quiesce loop extends adapt until the policy goes quiet).
    measure_migrations: u64,
    rebalance: RebalanceStats,
}

fn hotspot_policy() -> RebalancePolicy {
    RebalancePolicy::new(RebalanceConfig {
        warmup_ticks: 20,
        evaluate_every: 10,
        cooldown_ticks: 60,
        trigger_ratio: 1.3,
        min_gap_ms: 1.0,
        max_migrations_per_step: 8,
        smoothing: 0.25,
        ..RebalanceConfig::default()
    })
}

fn run_arm(rebalanced: bool, measure: SimDuration) -> Arm {
    let settle = SimDuration::from_secs(8);
    let adapt = SimDuration::from_secs(10);
    // The adapt window stretches (in whole seconds) until the policy has
    // been quiet for a full second, so no residual migration storm bleeds
    // into the measured steady state.
    let quiesce_budget = SimDuration::from_secs(10);
    let disperse_window = SimDuration::from_secs(4);

    let config = ServerConfig::opencraft().with_view_distance(32);
    let mut cluster = ShardedGameCluster::baseline(config, ZONES, SEED);
    if rebalanced {
        cluster.enable_rebalancing(hotspot_policy());
    }
    let sites = zone_hotspot_sites(cluster.shard_map(), HOT_ZONE, HOTSPOT_SITES);
    for site in &sites {
        for i in 0..CONSTRUCTS_PER_SITE {
            let base = site.min_block() + BlockPos::new(2 + 5 * i as i32, 6, 2 + 5 * i as i32);
            cluster.add_construct(generators::wire_line(6).translated(base));
        }
    }

    let mut fleet = PlayerFleet::new(
        BehaviorKind::Bounded { radius: 24.0 },
        SimRng::seed(SEED ^ 0x5eed),
    );
    fleet.connect_all(PLAYERS);
    let disperse_at = SimTime::ZERO + settle + adapt + quiesce_budget + measure;
    fleet.set_hotspot(Hotspot {
        targets: Hotspot::chunk_centers(&sites),
        converge_at: SimTime::ZERO + settle,
        disperse_at,
        travel_speed: 24.0,
        dwell_radius: 4.0,
    });

    // Phase 1+2: settle, then converge + adapt (the storm window).
    cluster.run_with_fleet(&mut fleet, settle);
    let adapt_start = cluster.ticks().len();
    cluster.run_with_fleet(&mut fleet, adapt);
    // Quiesce: extend the adapt window until one full second passes with
    // no migrations (bounded by the budget).
    let mut quiesce_spent = SimDuration::ZERO;
    while quiesce_spent < quiesce_budget {
        let before = cluster.rebalance_stats().shard_migrations;
        cluster.run_with_fleet(&mut fleet, SimDuration::from_secs(1));
        quiesce_spent += SimDuration::from_secs(1);
        if cluster.rebalance_stats().shard_migrations == before {
            break;
        }
    }
    let adapt_details = &cluster.ticks()[adapt_start..];
    let adapt_peak_ms = adapt_details
        .iter()
        .map(|d| d.tick.critical_path.as_millis_f64())
        .fold(0.0, f64::max);
    let adapt_migrations: u64 = adapt_details.iter().map(|d| d.shard_migrations).sum();

    // Phase 3: the measured steady state.
    cluster.discard_ticks();
    let messages_before = cluster.stats().cross_server_messages;
    cluster.run_with_fleet(&mut fleet, measure);
    let durations = cluster.critical_path_durations();
    let summary = Summary::from_durations(&durations);
    let ticks = cluster.ticks().len().max(1);
    let messages = cluster.stats().cross_server_messages - messages_before;
    let max_zone_players_mean = cluster
        .ticks()
        .iter()
        .map(|d| d.zones.iter().map(|z| z.players).max().unwrap_or(0) as f64)
        .sum::<f64>()
        / ticks as f64;
    let measure_migrations: u64 = cluster.ticks().iter().map(|d| d.shard_migrations).sum();

    // Phase 4: disperse (lifetime stats only) — run up to the scripted
    // dispersal time plus a tail for the walk home.
    let remaining = disperse_at.saturating_since(cluster.now()) + disperse_window;
    cluster.run_with_fleet(&mut fleet, remaining);

    Arm {
        mean_ms: summary.mean,
        p95_ms: summary.p95,
        p99_ms: summary.p99,
        qos_ok: qos_satisfied_default(&durations),
        messages_per_tick: messages as f64 / ticks as f64,
        max_zone_players_mean,
        adapt_peak_ms,
        adapt_migrations,
        measure_migrations,
        rebalance: cluster.rebalance_stats(),
    }
}

fn main() {
    let measure = scaled_secs(20);
    let static_arm = run_arm(false, measure);
    let rebalanced = run_arm(true, measure);
    let p99_improvement = static_arm.p99_ms / rebalanced.p99_ms.max(1e-9);

    let mut table = Table::new(vec![
        "Cluster",
        "mean tick [ms]",
        "p95 [ms]",
        "p99 [ms]",
        "max-zone players",
        "msgs/tick",
        "QoS ok",
    ]);
    for (label, arm) in [
        ("Static ShardMap (4 zones)", &static_arm),
        ("Rebalanced (4 zones)", &rebalanced),
    ] {
        table.row(vec![
            label.to_string(),
            format!("{:.1}", arm.mean_ms),
            format!("{:.1}", arm.p95_ms),
            format!("{:.1}", arm.p99_ms),
            format!("{:.1}", arm.max_zone_players_mean),
            format!("{:.1}", arm.messages_per_tick),
            arm.qos_ok.to_string(),
        ]);
    }
    emit(
        "ablation_rebalance",
        "Ablation: dynamic zone rebalancing under hotspot load",
        &table,
    );

    let migrations = rebalanced.rebalance;
    let migrated = migrations.shard_migrations > 0;
    let met = migrated && p99_improvement >= 1.5;
    let json = format!(
        "{{\n  \"experiment\": \"ablation_rebalance\",\n  \
         \"workload\": {{\"players\": {PLAYERS}, \"hotspot_sites\": {HOTSPOT_SITES}, \
         \"constructs\": {}, \"zones\": {ZONES}, \"measure_s\": {:.1}, \"scale\": {:.2}}},\n  \
         \"static\": {{\"mean_ms\": {:.3}, \"p95_ms\": {:.3}, \"critical_path_p99_ms\": {:.3}, \
         \"qos_ok\": {}, \"messages_per_tick\": {:.2}, \"max_zone_players_mean\": {:.1}}},\n  \
         \"rebalanced\": {{\"mean_ms\": {:.3}, \"p95_ms\": {:.3}, \"critical_path_p99_ms\": {:.3}, \
         \"qos_ok\": {}, \"messages_per_tick\": {:.2}, \"max_zone_players_mean\": {:.1}, \
         \"adapt_peak_ms\": {:.3}, \"adapt_migrations\": {}, \"measure_migrations\": {}}},\n  \
         \"migration_storm\": {{\"rebalance_events\": {}, \"shard_migrations\": {}, \
         \"chunks_transferred\": {}, \"constructs_transferred\": {}, \
         \"staged_dirty_handed_off\": {}, \"migration_messages\": {}}},\n  \
         \"acceptance\": {{\"p99_improvement\": {:.3}, \"target\": 1.5, \
         \"migrations_required\": true, \"migrated\": {}, \"met\": {}}}\n}}\n",
        HOTSPOT_SITES * CONSTRUCTS_PER_SITE,
        measure.as_secs_f64(),
        experiment_scale(),
        static_arm.mean_ms,
        static_arm.p95_ms,
        static_arm.p99_ms,
        static_arm.qos_ok,
        static_arm.messages_per_tick,
        static_arm.max_zone_players_mean,
        rebalanced.mean_ms,
        rebalanced.p95_ms,
        rebalanced.p99_ms,
        rebalanced.qos_ok,
        rebalanced.messages_per_tick,
        rebalanced.max_zone_players_mean,
        rebalanced.adapt_peak_ms,
        rebalanced.adapt_migrations,
        rebalanced.measure_migrations,
        migrations.rebalance_events,
        migrations.shard_migrations,
        migrations.chunks_transferred,
        migrations.constructs_transferred,
        migrations.staged_dirty_handed_off,
        migrations.migration_messages,
        p99_improvement,
        migrated,
        met,
    );
    let out_path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("bench crate sits two levels below the workspace root")
        .join("BENCH_rebalance.json");
    std::fs::write(&out_path, &json).expect("BENCH_rebalance.json must be writable");
    println!("[saved {}]", out_path.display());
    println!(
        "Hotspot on one zone: static p99 {:.1} ms (QoS {}), rebalanced p99 {:.1} ms (QoS {}) — \
         {p99_improvement:.2}x better after {} shard migrations ({} chunks, {} constructs, \
         {} messages charged; adapt-window peak {:.1} ms).",
        static_arm.p99_ms,
        if static_arm.qos_ok { "ok" } else { "violated" },
        rebalanced.p99_ms,
        if rebalanced.qos_ok { "ok" } else { "violated" },
        migrations.shard_migrations,
        migrations.chunks_transferred,
        migrations.constructs_transferred,
        migrations.migration_messages,
        rebalanced.adapt_peak_ms,
    );
}

//! Ablation: **zone crash recovery** — kill one zone of a 4-zone
//! persistent cluster mid-run and measure what it costs to survive it.
//!
//! The crashed zone is fenced (its remote store freezes at the crash),
//! its shards are adopted by the three survivors through the migration
//! path — chunk state rebuilt from the dead zone's remote store plus a
//! replay of its write-ahead delta log — and its avatars re-route to the
//! adopters, with every recovery message charged to the bus. Arms vary
//! two knobs:
//!
//! * **WAL on/off** — with the log, staged-but-unflushed deltas survive
//!   the crash (`chunks_lost == 0`); without it, everything staged since
//!   the last write-back pass dies with the zone's memory;
//! * **flush cadence** — the width of that loss window. Without a WAL,
//!   chunks lost grows with the cadence; with one, it stays zero at any
//!   cadence the log covers.
//!
//! Each arm reports the adoption window (recovery ticks, ticks over the
//! 50 ms budget, peak critical-path tick) and whether the cluster's
//! steady state after adoption is back within QoS. Writes
//! `results/ablation_failure.csv` and the acceptance artefact
//! `BENCH_failure.json` at the workspace root.

use servo_bench::{emit, experiment_scale, scaled_secs};
use servo_metrics::{qos_satisfied_default, Summary, Table};
use servo_redstone::generators;
use servo_server::cluster::{zone_hotspot_sites, ShardedGameCluster};
use servo_server::{RecoveryStats, ServerConfig};
use servo_simkit::SimRng;
use servo_storage::{BlobStore, BlobTier};
use servo_types::{BlockPos, SimDuration};
use servo_workload::{BehaviorKind, PlayerFleet};

/// Players wandering the world when the zone dies.
const PLAYERS: usize = 120;
/// Zones in every arm.
const ZONES: usize = 4;
/// The zone that crashes.
const DEAD_ZONE: usize = 3;
/// Constructs pinned into the dead zone's shards, so its staging always
/// holds freshly dirtied chunks when the crash fires.
const DEAD_ZONE_CONSTRUCTS: usize = 4;
const SEED: u64 = 23;

struct Arm {
    wal: bool,
    cadence: u64,
    recovery: RecoveryStats,
    /// Peak critical-path tick inside the adoption window.
    adoption_peak_ms: f64,
    /// Steady-state p99 after the adoption window closed.
    post_p99_ms: f64,
    /// QoS satisfied over the post-recovery steady state.
    qos_recovered: bool,
}

fn run_arm(wal: bool, cadence: u64) -> Arm {
    let settle = scaled_secs(6);
    let post = scaled_secs(10);

    let config = ServerConfig::opencraft().with_view_distance(32);
    let mut cluster = ShardedGameCluster::baseline(config, ZONES, SEED);
    for zone in 0..ZONES {
        cluster.attach_persistence(
            zone,
            BlobStore::new(BlobTier::Standard, SimRng::seed(900 + zone as u64)),
            SimRng::seed(950 + zone as u64),
            cadence,
        );
        cluster.set_wal_enabled(zone, wal);
    }
    let sites = zone_hotspot_sites(cluster.shard_map(), DEAD_ZONE, DEAD_ZONE_CONSTRUCTS);
    for (i, site) in sites.iter().enumerate() {
        let base = site.min_block() + BlockPos::new(2 + (i as i32 % 3) * 5, 6, 2);
        cluster.add_construct(generators::wire_line(6).translated(base));
    }

    // Random walkers use the Table II action mix — 30% of actions break or
    // place a block, so every zone's staging (the dead one included) holds
    // unflushed dirt when the crash fires mid-cadence.
    let mut fleet = PlayerFleet::new(BehaviorKind::Random, SimRng::seed(SEED ^ 0x5eed));
    fleet.connect_all(PLAYERS);

    // Settle: terrain provisions, the cadence establishes its rhythm.
    cluster.run_with_fleet(&mut fleet, settle);

    // Crash mid-cadence: half a flush window after the next pass, so the
    // dead zone's staging holds roughly cadence/2 ticks of dirt (plus the
    // construct chunks redirtied every tick).
    let ticks_now = cluster.stats().ticks;
    let crash_tick = ticks_now.div_ceil(cadence) * cadence + cadence + cadence / 2;
    cluster.crash_zone(DEAD_ZONE, crash_tick);
    cluster.discard_ticks();
    let base_tick = ticks_now;

    // Run through the crash, the adoption window, and a steady-state tail.
    let run_ticks = (crash_tick - base_tick) + 40 + post.as_millis() / 50;
    cluster.run_with_fleet(&mut fleet, SimDuration::from_millis(run_ticks * 50));

    let recovery = cluster.recovery_stats();
    assert!(recovery.crashes == 1, "the scheduled crash never fired");
    let details = cluster.ticks();
    let crash_idx = (crash_tick - base_tick) as usize;
    let adoption_end = (crash_idx + recovery.recovery_ticks.max(1) as usize).min(details.len());
    let adoption_peak_ms = details[crash_idx..adoption_end]
        .iter()
        .map(|d| d.tick.critical_path.as_millis_f64())
        .fold(0.0, f64::max);
    let post_durations: Vec<_> = details[adoption_end..]
        .iter()
        .map(|d| d.tick.critical_path)
        .collect();
    let post_summary = Summary::from_durations(&post_durations);
    let qos_recovered = cluster.pending_adoption_count() == 0
        && cluster.shard_map().zone_shards(DEAD_ZONE).is_empty()
        && qos_satisfied_default(&post_durations);

    Arm {
        wal,
        cadence,
        recovery,
        adoption_peak_ms,
        post_p99_ms: post_summary.p99,
        qos_recovered,
    }
}

fn arm_json(arm: &Arm) -> String {
    format!(
        "{{\"wal\": {}, \"cadence_ticks\": {}, \"chunks_lost\": {}, \
         \"chunks_restored\": {}, \"chunks_replayed\": {}, \"shards_adopted\": {}, \
         \"constructs_adopted\": {}, \"recovery_ticks\": {}, \"ticks_over_qos\": {}, \
         \"recovery_messages\": {}, \"adoption_peak_ms\": {:.3}, \"post_p99_ms\": {:.3}, \
         \"qos_recovered\": {}}}",
        arm.wal,
        arm.cadence,
        arm.recovery.chunks_lost,
        arm.recovery.chunks_restored,
        arm.recovery.chunks_replayed,
        arm.recovery.shards_adopted,
        arm.recovery.constructs_adopted,
        arm.recovery.recovery_ticks,
        arm.recovery.ticks_over_qos,
        arm.recovery.recovery_messages,
        arm.adoption_peak_ms,
        arm.post_p99_ms,
        arm.qos_recovered,
    )
}

fn main() {
    let arms = [
        run_arm(true, 10),
        run_arm(true, 30),
        run_arm(false, 10),
        run_arm(false, 30),
        run_arm(false, 60),
    ];

    let mut table = Table::new(vec![
        "Arm",
        "chunks lost",
        "replayed",
        "recovery ticks",
        "adoption peak [ms]",
        "post p99 [ms]",
        "QoS recovered",
    ]);
    for arm in &arms {
        table.row(vec![
            format!(
                "{} @ cadence {}",
                if arm.wal { "WAL" } else { "no WAL" },
                arm.cadence
            ),
            arm.recovery.chunks_lost.to_string(),
            arm.recovery.chunks_replayed.to_string(),
            arm.recovery.recovery_ticks.to_string(),
            format!("{:.1}", arm.adoption_peak_ms),
            format!("{:.1}", arm.post_p99_ms),
            arm.qos_recovered.to_string(),
        ]);
    }
    emit(
        "ablation_failure",
        "Ablation: zone crash recovery (WAL replay vs bounded loss)",
        &table,
    );

    let wal_zero_loss = arms
        .iter()
        .filter(|a| a.wal)
        .all(|a| a.recovery.chunks_lost == 0);
    let loss_without_wal = arms
        .iter()
        .filter(|a| !a.wal)
        .any(|a| a.recovery.chunks_lost > 0);
    let qos_recovered_all = arms.iter().all(|a| a.qos_recovered);
    let adopted_all = arms.iter().all(|a| a.recovery.shards_adopted > 0);
    let met = wal_zero_loss && loss_without_wal && qos_recovered_all && adopted_all;

    let named = [
        ("wal_c10", &arms[0]),
        ("wal_c30", &arms[1]),
        ("nowal_c10", &arms[2]),
        ("nowal_c30", &arms[3]),
        ("nowal_c60", &arms[4]),
    ];
    let mut json = String::from("{\n  \"experiment\": \"ablation_failure\",\n");
    json.push_str(&format!(
        "  \"workload\": {{\"players\": {PLAYERS}, \"zones\": {ZONES}, \
         \"dead_zone\": {DEAD_ZONE}, \"constructs\": {DEAD_ZONE_CONSTRUCTS}, \
         \"scale\": {:.2}}},\n",
        experiment_scale(),
    ));
    for (name, arm) in &named {
        json.push_str(&format!("  \"{name}\": {},\n", arm_json(arm)));
    }
    json.push_str(&format!(
        "  \"acceptance\": {{\"wal_zero_loss\": {wal_zero_loss}, \
         \"loss_without_wal\": {loss_without_wal}, \
         \"qos_recovered\": {qos_recovered_all}, \"met\": {met}}}\n}}\n",
    ));

    let out_path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("bench crate sits two levels below the workspace root")
        .join("BENCH_failure.json");
    std::fs::write(&out_path, &json).expect("BENCH_failure.json must be writable");
    println!("[saved {}]", out_path.display());
    for (name, arm) in &named {
        println!(
            "{name}: {} chunks lost ({} replayed), recovery {} ticks \
             ({} over QoS, peak {:.1} ms), post p99 {:.1} ms, recovered {}",
            arm.recovery.chunks_lost,
            arm.recovery.chunks_replayed,
            arm.recovery.recovery_ticks,
            arm.recovery.ticks_over_qos,
            arm.adoption_peak_ms,
            arm.post_p99_ms,
            arm.qos_recovered,
        );
    }
}

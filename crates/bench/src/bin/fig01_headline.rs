//! Figure 1: the headline result — maximum number of supported players for
//! Servo, Minecraft and Opencraft under the 100-simulated-construct
//! workload (Servo 150, Minecraft 90, Opencraft 10 in the paper).

use servo_bench::{emit, measure_capacity, scaled_secs, ExperimentWorld, SystemKind};
use servo_metrics::Table;
use servo_workload::BehaviorKind;

fn main() {
    let world = ExperimentWorld::flat_sc(100);
    let player_counts: Vec<u32> = (1..=20).map(|i| i * 10).collect();
    let duration = scaled_secs(30);
    let behavior = BehaviorKind::Bounded { radius: 24.0 };

    let mut table = Table::new(vec!["Game", "Maximum number of players supported"]);
    let mut results = Vec::new();
    for kind in [
        SystemKind::Servo,
        SystemKind::Minecraft,
        SystemKind::Opencraft,
    ] {
        let result = measure_capacity(kind, &world, behavior, &player_counts, duration, 7);
        results.push((kind, result.max_players));
        table.row(vec![
            kind.name().to_string(),
            result.max_players.to_string(),
        ]);
    }
    emit(
        "fig01_headline",
        "Figure 1: maximum number of supported players (100 simulated constructs)",
        &table,
    );

    let servo = results
        .iter()
        .find(|(k, _)| *k == SystemKind::Servo)
        .unwrap()
        .1;
    let minecraft = results
        .iter()
        .find(|(k, _)| *k == SystemKind::Minecraft)
        .unwrap()
        .1;
    let opencraft = results
        .iter()
        .find(|(k, _)| *k == SystemKind::Opencraft)
        .unwrap()
        .1;
    println!(
        "Servo supports +{} players vs Minecraft and +{} vs Opencraft (paper: +60 and +140).",
        servo.saturating_sub(minecraft),
        servo.saturating_sub(opencraft)
    );
}

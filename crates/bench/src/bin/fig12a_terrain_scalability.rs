//! Figure 12a: tick duration over time for the S3 and S8 workloads, in
//! which a new player joins every ten seconds and walks away from spawn in
//! a straight line at 3 or 8 blocks per second.
//!
//! The paper reports that Opencraft supports 12 (S3) / 9 (S8) players and
//! Servo 18 / 15 before the 95th-percentile tick duration exceeds 50 ms.

use servo_bench::{build_system, emit, scaled_secs, ExperimentWorld, SystemKind};
use servo_metrics::{RollingBands, Table};
use servo_simkit::SimRng;
use servo_types::SimDuration;
use servo_workload::{BehaviorKind, PlayerFleet};

fn supported_players(
    kind: SystemKind,
    speed: f64,
    duration: SimDuration,
) -> (u32, Vec<(u64, f64)>) {
    let world = ExperimentWorld::default_world(128);
    let mut server = build_system(kind, &world, 0xF12);
    let mut fleet = PlayerFleet::new(BehaviorKind::Star { speed }, SimRng::seed(0x12a));
    let max_players = (duration.as_secs_f64() / 10.0).ceil() as usize;
    fleet.set_join_schedule(max_players, SimDuration::from_secs(10));
    server.run_with_fleet(&mut fleet, duration);

    // Rolling 2.5-second p95 band; a player count is "supported" until the
    // band first exceeds the 50 ms budget. The first seconds are skipped:
    // they are dominated by the initial terrain load around the spawn point
    // rather than by player load.
    let bands = RollingBands::paper_default().compute(&server.tick_duration_series());
    let mut supported = max_players as u32;
    for band in &bands {
        if band.at.as_secs_f64() < 60.0 {
            continue;
        }
        if band.p95 > 50.0 {
            // Player joining every 10 s starting at t=0.
            supported = (band.at.as_secs_f64() / 10.0).floor() as u32;
            break;
        }
    }
    let series = bands
        .iter()
        .map(|b| (b.at.as_secs_f64() as u64, b.p95))
        .collect();
    (supported.min(max_players as u32), series)
}

fn main() {
    let duration = scaled_secs(300);
    let mut summary = Table::new(vec!["Workload", "Servo: players", "Opencraft: players"]);
    for (label, speed) in [("S3", 3.0), ("S8", 8.0)] {
        let (servo_n, servo_series) = supported_players(SystemKind::Servo, speed, duration);
        let (open_n, open_series) = supported_players(SystemKind::Opencraft, speed, duration);
        summary.row(vec![
            label.to_string(),
            servo_n.to_string(),
            open_n.to_string(),
        ]);

        let mut detail = Table::new(vec![
            "Time [s]",
            "Servo p95 tick [ms]",
            "Opencraft p95 tick [ms]",
        ]);
        for (servo_point, open_point) in servo_series.iter().zip(open_series.iter()) {
            detail.row(vec![
                servo_point.0.to_string(),
                format!("{:.1}", servo_point.1),
                format!("{:.1}", open_point.1),
            ]);
        }
        emit(
            &format!("fig12a_{}_tick_over_time", label.to_lowercase()),
            &format!("Figure 12a ({label}): rolling p95 tick duration as players join"),
            &detail,
        );
    }
    emit(
        "fig12a_supported_players",
        "Figure 12a: supported players under S3 and S8 (p95 below 50 ms)",
        &summary,
    );
}

//! Ablation: **client replication at 10^5–10^6 subscribers** — what the
//! interest-managed delta broadcast costs on the 4-zone hybrid workload,
//! and what delta compression buys over naive full-interest resync.
//!
//! Arms, all driven by the same construct + edit workload:
//!
//! * **control** — no replication attached: the tick is byte-identical to
//!   the pre-replication cluster, giving the p99 floor;
//! * **delta** — `SUBSCRIBERS` (scaled, 10^5 at full scale) clients with
//!   zipf-skewed interest centres over the edit hot-spot and the border
//!   construct sites, flushed in round-robin cohorts: fresh subscribers
//!   get one keyframe, everyone else gets dirty-chunk deltas, slow
//!   cohorts get coalesced diffs; a small fraction of clients retargets
//!   every tick (avatar movement);
//! * **keyframe** — the same subscribers with delta compression disabled
//!   ([`servo_replication::HubConfig::keyframe_only`]): every touched
//!   subscriber re-receives its full loaded interest region per flush —
//!   the naive-resync control the `delta_ratio` headline divides by;
//! * **sweep** — 10x the subscribers (10^6 at full scale) at radius 1,
//!   bounding index memory while proving the fan-out holds QoS;
//! * **mirror equality** — the border-as-subscriber path vs the legacy
//!   mirror on identical seeds must produce *equal* cluster stats,
//!   message for message.
//!
//! Writes `results/ablation_replication.csv` and the acceptance artefact
//! `BENCH_replication.json` at the workspace root.

use servo_bench::{emit, experiment_scale, scaled_secs};
use servo_core::{HybridDeployment, ServoDeployment};
use servo_metrics::{qos_satisfied_default, report_table, StatsReport, Summary, Table};
use servo_redstone::generators;
use servo_replication::{FanoutConfig, HubConfig, Interest, ReplicationConfig, SubscriberId};
use servo_server::cluster::{border_construct_sites, place_across_east_seam, ShardedGameCluster};
use servo_simkit::SimRng;
use servo_types::{ChunkPos, SimDuration};
use servo_workload::{BehaviorKind, KeySkew, PlayerFleet};
use servo_world::ShardMap;

/// Players (the construct-dominated hybrid scenario of `ablation_border`).
const PLAYERS: usize = 60;
/// Border-spanning constructs keeping the seam chunks dirty every tick.
const CONSTRUCTS: usize = 160;
/// Blocks of wire per border construct.
const CONSTRUCT_WIRES: usize = 14;
/// Zones.
const ZONES: usize = 4;
/// Chebyshev interest radius of the headline arms (a 5x5 chunk view).
const RADIUS: i32 = 2;
/// Round-robin flush cohorts of the headline arms.
const COHORTS: u64 = 8;
/// Zipf exponent of the interest-centre skew.
const ZIPF_EXPONENT: f64 = 1.1;
/// Fraction of subscribers that retargets (moves) per tick.
const RETARGET_FRACTION: f64 = 2e-4;

/// What replication (if any) an arm runs with.
enum Mode {
    Control,
    Replicated {
        subscribers: usize,
        radius: i32,
        cohorts: u64,
        keyframe_only: bool,
    },
}

struct ReplRun {
    mean_ms: f64,
    p95_ms: f64,
    p99_ms: f64,
    qos_ok: bool,
    ticks: u64,
    subscribers: u64,
    frames_per_tick: f64,
    bytes_per_tick: f64,
    delta_frames: u64,
    keyframes: u64,
    chunks_per_tick: f64,
    coalesced_chunks: u64,
    retargets: u64,
    fanout_charged_ms: f64,
    stats_dump: Option<Table>,
}

/// Interest-centre universe: the spawn edit hot-spot first (the zipf head,
/// where terrain accumulates modifications all run), then the border
/// construct sites (the tail, kept dirty by the redstone steps).
fn interest_targets(map: &ShardMap) -> Vec<ChunkPos> {
    let mut targets = Vec::new();
    for x in -3..3 {
        for z in -3..3 {
            targets.push(ChunkPos::new(x, z));
        }
    }
    targets.extend(border_construct_sites(map, CONSTRUCTS));
    targets
}

/// The deterministic terrain-edit stream shared with `ablation_border`:
/// two block edits per tick in the spawn area, identical across arms.
struct EditStream {
    rng: SimRng,
}

impl EditStream {
    fn new(seed: u64) -> Self {
        EditStream {
            rng: SimRng::seed(seed).substream("terrain-edits"),
        }
    }

    fn next_events(&mut self) -> Vec<(servo_types::PlayerId, servo_workload::PlayerEvent)> {
        use servo_types::{BlockPos, PlayerId};
        use servo_workload::PlayerEvent;
        (0..2)
            .map(|_| {
                let x = (self.rng.unit() * 81.0) as i32 - 40;
                let z = (self.rng.unit() * 81.0) as i32 - 40;
                let pos = BlockPos::new(x, 9, z);
                let event = if self.rng.unit() < 0.5 {
                    PlayerEvent::BlockPlaced(pos)
                } else {
                    PlayerEvent::BlockBroken(pos)
                };
                let player = (self.rng.unit() * PLAYERS as f64) as u64;
                (PlayerId::new(player.min(PLAYERS as u64 - 1)), event)
            })
            .collect()
    }
}

/// Drives the cluster for `duration`, injecting edits and retargeting
/// `movers_per_tick` random subscribers each tick. Returns ticks run.
#[allow(clippy::too_many_arguments)]
fn drive(
    cluster: &mut ShardedGameCluster,
    fleet: &mut PlayerFleet,
    edits: &mut EditStream,
    duration: SimDuration,
    clients: &[SubscriberId],
    movers_per_tick: usize,
    skew: &mut KeySkew,
    targets: &[ChunkPos],
    mover_rng: &mut SimRng,
) -> u64 {
    let end = cluster.now() + duration;
    let budget = cluster.servers()[0].config().tick_budget();
    let mut ticks = 0u64;
    while cluster.now() < end {
        if !clients.is_empty() {
            for _ in 0..movers_per_tick {
                let who =
                    clients[(mover_rng.unit() * clients.len() as f64) as usize % clients.len()];
                cluster.retarget_client(who, targets[skew.sample()]);
            }
        }
        let now = cluster.now();
        let mut events = fleet.tick(now, budget);
        events.extend(edits.next_events());
        let positions = fleet.positions();
        cluster.run_tick(&positions, &events);
        ticks += 1;
    }
    ticks
}

fn run_arm(seed: u64, mode: Mode, warmup: SimDuration, measure: SimDuration) -> ReplRun {
    let mut hybrid: HybridDeployment = ServoDeployment::builder()
        .seed(seed)
        .view_distance(32)
        .hybrid(ZONES);
    let map = hybrid.cluster.shard_map().clone();
    for site in border_construct_sites(&map, CONSTRUCTS) {
        hybrid.cluster.add_construct(place_across_east_seam(
            &generators::wire_line(CONSTRUCT_WIRES),
            site,
            6,
        ));
    }

    let targets = interest_targets(&map);
    let mut skew = KeySkew::zipf(
        targets.len(),
        ZIPF_EXPONENT,
        SimRng::seed(seed).substream("interest-skew"),
    );
    let mut clients: Vec<SubscriberId> = Vec::new();
    let mut movers_per_tick = 0usize;
    if let Mode::Replicated {
        subscribers,
        radius,
        cohorts,
        keyframe_only,
    } = mode
    {
        hybrid.cluster.enable_replication(ReplicationConfig {
            hub: HubConfig {
                keyframe_only,
                ..HubConfig::default()
            },
            fanout: FanoutConfig {
                scaler: servo_faas::AutoscalerConfig::elastic(4, 64).with_backlog_per_worker(1024),
                ..FanoutConfig::default()
            },
            cohorts,
            border_via_subscription: false,
        });
        clients = (0..subscribers)
            .map(|_| {
                let center = targets[skew.sample()];
                hybrid
                    .cluster
                    .subscribe_client(Interest::new(center, radius))
                    .expect("replication attached")
            })
            .collect();
        movers_per_tick = ((subscribers as f64) * RETARGET_FRACTION).round() as usize;
    }

    let mut fleet = PlayerFleet::new(
        BehaviorKind::Bounded { radius: 24.0 },
        SimRng::seed(seed ^ 0x5eed),
    );
    fleet.connect_all(PLAYERS);
    let mut edits = EditStream::new(seed);
    let mut mover_rng = SimRng::seed(seed).substream("movers");

    // Warm-up absorbs terrain loading and the initial keyframe wave, so
    // the measure window sees the steady delta protocol.
    drive(
        &mut hybrid.cluster,
        &mut fleet,
        &mut edits,
        warmup,
        &clients,
        movers_per_tick,
        &mut skew,
        &targets,
        &mut mover_rng,
    );
    hybrid.cluster.discard_ticks();
    let repl_before = hybrid.cluster.replication_stats();
    let ticks = drive(
        &mut hybrid.cluster,
        &mut fleet,
        &mut edits,
        measure,
        &clients,
        movers_per_tick,
        &mut skew,
        &targets,
        &mut mover_rng,
    );

    let summary = Summary::from_durations(&hybrid.cluster.critical_path_durations());
    let qos_ok = qos_satisfied_default(&hybrid.cluster.critical_path_durations());
    let (mut frames, mut bytes, mut delta_frames, mut keyframes) = (0u64, 0u64, 0u64, 0u64);
    let (mut chunks, mut coalesced, mut retargets) = (0u64, 0u64, 0u64);
    let mut stats_dump = None;
    if let (Some(before), Some(after)) = (repl_before, hybrid.cluster.replication_stats()) {
        frames = after.frames - before.frames;
        bytes = after.bytes_sent - before.bytes_sent;
        delta_frames = after.delta_frames - before.delta_frames;
        keyframes = after.keyframes - before.keyframes;
        chunks = after.chunks_delivered - before.chunks_delivered;
        coalesced = after.coalesced_chunks - before.coalesced_chunks;
        retargets = after.retargets - before.retargets;
        let fanout = hybrid.cluster.fanout_stats().expect("replication attached");
        let reports: [&dyn StatsReport; 2] = [&after, &fanout];
        stats_dump = Some(report_table(&reports));
    }
    let fanout_charged_ms = hybrid
        .cluster
        .fanout_stats()
        .map(|f| f.charged_ms)
        .unwrap_or(0.0);
    ReplRun {
        mean_ms: summary.mean,
        p95_ms: summary.p95,
        p99_ms: summary.p99,
        qos_ok,
        ticks,
        subscribers: clients.len() as u64,
        frames_per_tick: frames as f64 / ticks.max(1) as f64,
        bytes_per_tick: bytes as f64 / ticks.max(1) as f64,
        delta_frames,
        keyframes,
        chunks_per_tick: chunks as f64 / ticks.max(1) as f64,
        coalesced_chunks: coalesced,
        retargets,
        fanout_charged_ms,
        stats_dump,
    }
}

/// The degeneracy check: the same short run with border mirroring routed
/// through whole-shard subscriptions vs the legacy path. Returns the two
/// message counts and whether the full cluster stats match.
fn mirror_equality(seed: u64) -> (u64, u64, bool) {
    let run = |via_subscription: bool| {
        let mut hybrid: HybridDeployment = ServoDeployment::builder()
            .seed(seed)
            .view_distance(32)
            .hybrid(ZONES);
        if via_subscription {
            hybrid.cluster.enable_replication(ReplicationConfig {
                border_via_subscription: true,
                ..ReplicationConfig::default()
            });
        }
        for site in border_construct_sites(&hybrid.cluster.shard_map().clone(), 40) {
            hybrid.cluster.add_construct(place_across_east_seam(
                &generators::wire_line(CONSTRUCT_WIRES),
                site,
                6,
            ));
        }
        let mut fleet = PlayerFleet::new(
            BehaviorKind::Bounded { radius: 24.0 },
            SimRng::seed(seed ^ 0x5eed),
        );
        fleet.connect_all(24);
        let mut edits = EditStream::new(seed);
        let mut skew = KeySkew::zipf(4, ZIPF_EXPONENT, SimRng::seed(seed));
        let mut mover_rng = SimRng::seed(seed);
        drive(
            &mut hybrid.cluster,
            &mut fleet,
            &mut edits,
            scaled_secs(8),
            &[],
            0,
            &mut skew,
            &[],
            &mut mover_rng,
        );
        hybrid
    };
    let legacy = run(false);
    let subscribed = run(true);
    let matches = legacy.cluster.stats() == subscribed.cluster.stats()
        && legacy.cluster.critical_path_durations() == subscribed.cluster.critical_path_durations();
    (
        legacy.cluster.stats().cross_server_messages,
        subscribed.cluster.stats().cross_server_messages,
        matches,
    )
}

fn main() {
    let scale = experiment_scale();
    let warmup = scaled_secs(8);
    let measure = scaled_secs(20);
    let seed = 17;

    let headline_subs = ((100_000.0 * scale).round() as usize).max(1_000);
    let sweep_subs = ((1_000_000.0 * scale).round() as usize).max(10_000);

    let control = run_arm(seed, Mode::Control, warmup, measure);
    let delta = run_arm(
        seed,
        Mode::Replicated {
            subscribers: headline_subs,
            radius: RADIUS,
            cohorts: COHORTS,
            keyframe_only: false,
        },
        warmup,
        measure,
    );
    let keyframe = run_arm(
        seed,
        Mode::Replicated {
            subscribers: headline_subs,
            radius: RADIUS,
            cohorts: COHORTS,
            keyframe_only: true,
        },
        warmup,
        measure,
    );
    let sweep = run_arm(
        seed,
        Mode::Replicated {
            subscribers: sweep_subs,
            radius: 1,
            cohorts: 4 * COHORTS,
            keyframe_only: false,
        },
        scaled_secs(3),
        scaled_secs(5),
    );
    let (mirror_legacy_msgs, mirror_sub_msgs, mirror_match) = mirror_equality(seed);

    let mut table = Table::new(vec![
        "Arm",
        "subscribers",
        "mean tick [ms]",
        "p99 [ms]",
        "frames/tick",
        "KB/tick",
        "keyframes",
        "delta frames",
        "QoS ok",
    ]);
    for (label, run) in [
        ("Control (no replication)", &control),
        ("Delta broadcast", &delta),
        ("Keyframe-only resync", &keyframe),
        ("Sweep 10x, radius 1", &sweep),
    ] {
        table.row(vec![
            label.to_string(),
            run.subscribers.to_string(),
            format!("{:.1}", run.mean_ms),
            format!("{:.1}", run.p99_ms),
            format!("{:.0}", run.frames_per_tick),
            format!("{:.1}", run.bytes_per_tick / 1024.0),
            run.keyframes.to_string(),
            run.delta_frames.to_string(),
            run.qos_ok.to_string(),
        ]);
    }
    emit(
        "ablation_replication",
        "Ablation: interest-managed delta broadcast vs keyframe resync vs no replication",
        &table,
    );
    if let Some(dump) = &delta.stats_dump {
        emit(
            "ablation_replication_stats",
            "Delta arm subsystem counters (via the StatsReport trait)",
            dump,
        );
    }

    let delta_ratio = keyframe.bytes_per_tick / delta.bytes_per_tick.max(1.0);
    let p99_impact_ms = delta.p99_ms - control.p99_ms;
    let min_subscribers = ((100_000.0 * scale).round() as u64).clamp(1_000, 100_000);
    let met = delta.subscribers >= min_subscribers
        && delta_ratio >= 5.0
        && delta.qos_ok
        && delta.delta_frames > 0
        && delta.coalesced_chunks > 0
        && mirror_match;

    let arm_json = |run: &ReplRun| {
        format!(
            "{{\"subscribers\": {}, \"ticks\": {}, \"mean_ms\": {:.3}, \"p95_ms\": {:.3}, \
             \"p99_ms\": {:.3}, \"qos_ok\": {}, \"frames_per_tick\": {:.1}, \
             \"bytes_per_tick\": {:.0}, \"delta_frames\": {}, \"keyframes\": {}, \
             \"chunks_per_tick\": {:.1}, \"coalesced_chunks\": {}, \"retargets\": {}, \
             \"fanout_charged_ms\": {:.3}}}",
            run.subscribers,
            run.ticks,
            run.mean_ms,
            run.p95_ms,
            run.p99_ms,
            run.qos_ok,
            run.frames_per_tick,
            run.bytes_per_tick,
            run.delta_frames,
            run.keyframes,
            run.chunks_per_tick,
            run.coalesced_chunks,
            run.retargets,
            run.fanout_charged_ms,
        )
    };
    let json = format!(
        "{{\n  \"experiment\": \"ablation_replication\",\n  \
         \"workload\": {{\"players\": {PLAYERS}, \"border_constructs\": {CONSTRUCTS}, \
         \"zones\": {ZONES}, \"radius\": {RADIUS}, \"cohorts\": {COHORTS}, \
         \"zipf_exponent\": {ZIPF_EXPONENT}, \"retarget_fraction\": {RETARGET_FRACTION}}},\n  \
         \"control\": {},\n  \
         \"delta\": {},\n  \
         \"keyframe\": {},\n  \
         \"sweep\": {},\n  \
         \"mirror\": {{\"legacy_messages\": {mirror_legacy_msgs}, \
         \"subscription_messages\": {mirror_sub_msgs}, \"stats_match\": {mirror_match}}},\n  \
         \"acceptance\": {{\"subscribers\": {}, \"min_subscribers\": {min_subscribers}, \
         \"delta_ratio\": {delta_ratio:.3}, \"required_ratio\": 5.0, \
         \"qos_ok\": {}, \"p99_impact_ms\": {p99_impact_ms:.3}, \
         \"mirror_messages_match\": {mirror_match}, \"met\": {met}}}\n}}\n",
        arm_json(&control),
        arm_json(&delta),
        arm_json(&keyframe),
        arm_json(&sweep),
        delta.subscribers,
        delta.qos_ok,
    );
    let out_path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("bench crate sits two levels below the workspace root")
        .join("BENCH_replication.json");
    std::fs::write(&out_path, &json).expect("BENCH_replication.json must be writable");
    println!("[saved {}]", out_path.display());
    println!(
        "Delta broadcast serves {} subscribers at {:.0} KB/tick ({delta_ratio:.1}x below the \
         keyframe-only resync's {:.0} KB/tick), p99 {:.1} ms vs {:.1} ms control \
         (+{p99_impact_ms:.1} ms); border-as-subscriber {} the legacy mirror.",
        delta.subscribers,
        delta.bytes_per_tick / 1024.0,
        keyframe.bytes_per_tick / 1024.0,
        delta.p99_ms,
        control.p99_ms,
        if mirror_match {
            "matches"
        } else {
            "DIVERGES from"
        },
    );
}

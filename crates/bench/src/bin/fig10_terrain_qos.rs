//! Figure 10: serverless terrain generation quality of service.
//!
//! Five players move outward with increasing speed (S_inc) through a
//! procedurally generated world. The paper shows that Opencraft's local
//! generation keeps up only at low speeds (the distance to the nearest
//! missing terrain collapses below 16 blocks by the end), while Servo
//! maintains the full 128-block view distance throughout.

use servo_bench::{build_system, emit, scaled_secs, ExperimentWorld, SystemKind};
use servo_metrics::{RollingBands, Table, TimePoint};
use servo_simkit::SimRng;
use servo_types::SimDuration;
use servo_workload::{BehaviorKind, PlayerFleet};

fn run(kind: SystemKind, duration: SimDuration) -> (Vec<TimePoint>, Vec<TimePoint>) {
    let world = ExperimentWorld::default_world(128);
    let mut server = build_system(kind, &world, 0xF10);
    let mut fleet = PlayerFleet::new(
        BehaviorKind::IncreasingStar {
            step_every: SimDuration::from_secs(200),
        },
        SimRng::seed(0x90),
    );
    fleet.connect_all(5);
    server.run_with_fleet(&mut fleet, duration);
    (server.view_range_series(), server.tick_duration_series())
}

fn main() {
    let duration = scaled_secs(800);
    let bucket = SimDuration::from_secs(50);

    let mut view_table = Table::new(vec![
        "Time [s]",
        "Servo: min view range [blocks]",
        "Opencraft: min view range [blocks]",
    ]);
    let mut tick_table = Table::new(vec![
        "Time [s]",
        "Servo: p95 tick [ms]",
        "Opencraft: p95 tick [ms]",
    ]);

    let (servo_view, servo_ticks) = run(SystemKind::Servo, duration);
    let (open_view, open_ticks) = run(SystemKind::Opencraft, duration);

    // Aggregate the view-range series into coarse buckets (minimum per
    // bucket: the worst QoS seen in that window).
    let bucket_min = |series: &[TimePoint], index: u64| -> f64 {
        let lo = index * bucket.as_micros();
        let hi = lo + bucket.as_micros();
        series
            .iter()
            .filter(|p| p.at.as_micros() >= lo && p.at.as_micros() < hi)
            .map(|p| p.value)
            .fold(f64::INFINITY, f64::min)
    };
    let buckets = (duration.as_micros() / bucket.as_micros()).max(1);
    for i in 0..buckets {
        let t = (i + 1) * bucket.as_micros() / 1_000_000;
        let s = bucket_min(&servo_view, i);
        let o = bucket_min(&open_view, i);
        if s.is_finite() || o.is_finite() {
            view_table.row(vec![
                t.to_string(),
                format!("{:.0}", s),
                format!("{:.0}", o),
            ]);
        }
    }

    let bands = RollingBands::new(bucket);
    let servo_bands = bands.compute(&servo_ticks);
    let open_bands = bands.compute(&open_ticks);
    for (i, (s, o)) in servo_bands.iter().zip(open_bands.iter()).enumerate() {
        tick_table.row(vec![
            ((i as u64 + 1) * bucket.as_micros() / 1_000_000).to_string(),
            format!("{:.1}", s.p95),
            format!("{:.1}", o.p95),
        ]);
    }

    emit(
        "fig10a_view_range",
        "Figure 10a: distance to closest unloaded terrain over time (S_inc, 5 players)",
        &view_table,
    );
    emit(
        "fig10b_tick_duration",
        "Figure 10b: tick duration over time (S_inc, 5 players)",
        &tick_table,
    );

    let servo_final = servo_view.last().map(|p| p.value).unwrap_or(0.0);
    let open_final = open_view.last().map(|p| p.value).unwrap_or(0.0);
    println!(
        "Final view range: Servo {servo_final:.0} blocks, Opencraft {open_final:.0} blocks \
         (paper: Servo maintains 128, Opencraft drops below 16)."
    );
}

//! Section IV-G (main finding MF6): serverless offloading performance for
//! small and medium simulated constructs.
//!
//! The paper reports that at least 95% of 100-step speculative executions of
//! a 252-block construct simulate at 488 updates per second or more (24.4x
//! the 20 Hz game rate), and a 484-block construct at 105 updates per second
//! or more (5.3x the game rate).

use servo_bench::{emit, experiment_scale};
use servo_core::ScWorkModel;
use servo_faas::{FaasPlatform, FunctionConfig};
use servo_metrics::{percentile, Table};
use servo_redstone::{generators, Construct};
use servo_simkit::SimRng;
use servo_types::{MemoryMb, SimTime};

fn main() {
    let invocations = (200.0 * experiment_scale()) as usize;
    let steps = 100usize;
    let work_model = ScWorkModel::default();

    let mut table = Table::new(vec![
        "Construct size [blocks]",
        "p5 update rate [steps/s]",
        "median update rate [steps/s]",
        "speed-up vs 20 Hz game rate (p5)",
    ]);

    for blueprint in [generators::paper_small(), generators::paper_medium()] {
        let blocks = blueprint.len();
        let mut platform = FaasPlatform::new(
            FunctionConfig::aws_like(MemoryMb::new(2048)),
            SimRng::seed(0x46 + blocks as u64),
        );
        let mut rates = Vec::with_capacity(invocations);
        let mut now = SimTime::ZERO;
        for _ in 0..invocations {
            // The function both actually simulates the construct (real
            // engine work) and is billed/timed through the platform model.
            let mut construct = Construct::new(blueprint.clone());
            construct.step_many(steps);
            let work = work_model.work_for(blocks, steps);
            let inv = platform.invoke(now, work).expect("within timeout");
            now = inv.completed_at;
            let rate = steps as f64 / inv.compute.as_secs_f64();
            rates.push(rate);
        }
        let p5 = percentile(&rates, 0.05);
        let median = percentile(&rates, 0.5);
        table.row(vec![
            blocks.to_string(),
            format!("{:.0}", p5),
            format!("{:.0}", median),
            format!("{:.1}x", p5 / 20.0),
        ]);
    }
    emit(
        "sec4g_sc_performance",
        "Section IV-G: speculative execution rate for small and medium constructs",
        &table,
    );
}

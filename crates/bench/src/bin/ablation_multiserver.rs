//! Ablation: the classic scale-out techniques of paper Section II-B —
//! zoning and replication — measured against Servo's serverless offloading
//! on MVE workloads, **on real ticks**.
//!
//! Earlier revisions argued this with a closed-form cost model only (the
//! analytic `ZonedCluster`/`ReplicatedCluster` of `servo_server::multi`,
//! still reported below for comparison). The headline numbers now come
//! from `servo_server::cluster::ShardedGameCluster`: real `GameServer`
//! instances partitioned over `ShardedWorld` shards, with real constructs,
//! real terrain, player handoff and a deterministic cross-zone border
//! protocol.
//!
//! Two measured scenarios carry the argument:
//!
//! * **player-only** — zoning works: splitting a player-dominated workload
//!   over four zone servers cuts the mean critical path by well over 2x;
//! * **border constructs** — zoning collapses: once ~160 constructs span
//!   zone borders, every simulated tick pays cross-zone state exchange,
//!   and four servers buy less than 1.3x — while a single Servo
//!   deployment offloads the same constructs and stays within QoS.
//!
//! Writes `results/ablation_multiserver.csv` and the acceptance artefact
//! `BENCH_multiserver.json` at the workspace root.

use servo_bench::{emit, measure_tick_durations, scaled_secs, ExperimentWorld, SystemKind};
use servo_core::ServoDeployment;
use servo_metrics::{qos_satisfied_default, Summary, Table};
use servo_redstone::generators;
use servo_server::cluster::{border_construct_sites, place_across_east_seam, ShardedGameCluster};
use servo_server::multi::{replicated_tick_durations, zoned_tick_durations};
use servo_server::{CostModel, ServerConfig};
use servo_simkit::SimRng;
use servo_types::SimDuration;
use servo_workload::{BehaviorKind, PlayerFleet};
use servo_world::ShardMap;

/// Players in the player-dominated scenario.
const PLAYER_ONLY_PLAYERS: usize = 120;
/// Players in the construct-dominated scenario.
const BORDER_PLAYERS: usize = 60;
/// Border-spanning constructs in the construct-dominated scenario.
const BORDER_CONSTRUCTS: usize = 160;
/// Blocks of wire per border construct (spans the chunk seam).
const BORDER_CONSTRUCT_WIRES: usize = 14;

struct ClusterRun {
    mean_ms: f64,
    p95_ms: f64,
    qos_ok: bool,
    messages_per_tick: f64,
    border_constructs: usize,
}

/// The blueprints of the border-construct fleet for a given shard map:
/// wire lines laid across east-facing zone seams, so every one of them
/// spans two zones (on multi-zone maps) or none (single zone).
fn border_fleet_blueprints(map: &ShardMap, count: usize) -> Vec<servo_redstone::Blueprint> {
    // On a single-zone map there are no border sites; reuse the 4-zone
    // sites so the 1-zone baseline simulates the *same* constructs at the
    // same world positions, just without any borders to coordinate.
    let reference = if map.zones() > 1 {
        map.clone()
    } else {
        ShardMap::contiguous(map.shard_count(), 4)
    };
    border_construct_sites(&reference, count)
        .into_iter()
        .map(|site| place_across_east_seam(&generators::wire_line(BORDER_CONSTRUCT_WIRES), site, 6))
        .collect()
}

/// Runs one real zoned cluster: warm-up, then a measured window.
fn run_cluster(
    zones: usize,
    players: usize,
    constructs: usize,
    seed: u64,
    warmup: SimDuration,
    measure: SimDuration,
) -> ClusterRun {
    let config = ServerConfig::opencraft().with_view_distance(32);
    let mut cluster = ShardedGameCluster::baseline(config, zones, seed);
    for blueprint in border_fleet_blueprints(&cluster.shard_map().clone(), constructs) {
        cluster.add_construct(blueprint);
    }
    let mut fleet = PlayerFleet::new(
        BehaviorKind::Bounded { radius: 24.0 },
        SimRng::seed(seed ^ 0x5eed),
    );
    fleet.connect_all(players);
    cluster.run_with_fleet(&mut fleet, warmup);
    cluster.discard_ticks();
    let before_messages = cluster.stats().cross_server_messages;
    let ticks = cluster.run_with_fleet(&mut fleet, measure);
    let durations = cluster.critical_path_durations();
    let summary = Summary::from_durations(&durations);
    ClusterRun {
        mean_ms: summary.mean,
        p95_ms: summary.p95,
        qos_ok: qos_satisfied_default(&durations),
        messages_per_tick: (cluster.stats().cross_server_messages - before_messages) as f64
            / ticks.len().max(1) as f64,
        border_constructs: cluster.border_construct_count(),
    }
}

/// Runs the single Servo deployment (offloading instead of zoning) on the
/// border-construct workload.
fn run_servo(seed: u64, warmup: SimDuration, measure: SimDuration) -> (f64, f64, bool) {
    let mut deployment = ServoDeployment::builder()
        .seed(seed)
        .view_distance(32)
        .build();
    let map = ShardMap::contiguous(deployment.server.world().shard_count(), 4);
    for blueprint in border_fleet_blueprints(&map, BORDER_CONSTRUCTS) {
        deployment.server.add_construct(blueprint);
    }
    let mut fleet = PlayerFleet::new(
        BehaviorKind::Bounded { radius: 24.0 },
        SimRng::seed(seed ^ 0x5eed),
    );
    fleet.connect_all(BORDER_PLAYERS);
    deployment.run_with_fleet(&mut fleet, warmup);
    deployment.server.discard_reports();
    deployment.run_with_fleet(&mut fleet, measure);
    let durations = deployment.server.tick_durations();
    let summary = Summary::from_durations(&durations);
    (summary.mean, summary.p95, qos_satisfied_default(&durations))
}

fn main() {
    let warmup = scaled_secs(10);
    let measure = scaled_secs(20);
    let analytic_ticks = (scaled_secs(30).as_secs_f64() * 20.0) as usize;

    let mut table = Table::new(vec![
        "Architecture",
        "Players",
        "Constructs",
        "mean tick [ms]",
        "p95 tick [ms]",
        "msgs/tick",
        "QoS ok",
    ]);
    let mut row = |label: &str, players: usize, constructs: usize, run: &ClusterRun| {
        table.row(vec![
            label.to_string(),
            players.to_string(),
            constructs.to_string(),
            format!("{:.1}", run.mean_ms),
            format!("{:.1}", run.p95_ms),
            format!("{:.1}", run.messages_per_tick),
            run.qos_ok.to_string(),
        ]);
    };

    // --- Measured scenario 1: player-only load, zoning at its best. ---
    let po_1 = run_cluster(1, PLAYER_ONLY_PLAYERS, 0, 11, warmup, measure);
    let po_4 = run_cluster(4, PLAYER_ONLY_PLAYERS, 0, 11, warmup, measure);
    let player_only_speedup = po_1.mean_ms / po_4.mean_ms;
    row("Measured zoning (1 zone)", PLAYER_ONLY_PLAYERS, 0, &po_1);
    row("Measured zoning (4 zones)", PLAYER_ONLY_PLAYERS, 0, &po_4);

    // --- Measured scenario 2: border constructs, zoning's failure mode. ---
    let bc_1 = run_cluster(1, BORDER_PLAYERS, BORDER_CONSTRUCTS, 13, warmup, measure);
    let bc_4 = run_cluster(4, BORDER_PLAYERS, BORDER_CONSTRUCTS, 13, warmup, measure);
    let border_speedup = bc_1.mean_ms / bc_4.mean_ms;
    row(
        "Measured zoning (1 zone)",
        BORDER_PLAYERS,
        BORDER_CONSTRUCTS,
        &bc_1,
    );
    row(
        "Measured zoning (4 zones)",
        BORDER_PLAYERS,
        BORDER_CONSTRUCTS,
        &bc_4,
    );

    // --- Servo: one server plus offloading on the same border fleet. ---
    let (servo_mean, servo_p95, servo_qos) = run_servo(17, warmup, measure);
    table.row(vec![
        "Servo (1 server + FaaS)".to_string(),
        BORDER_PLAYERS.to_string(),
        BORDER_CONSTRUCTS.to_string(),
        format!("{servo_mean:.1}"),
        format!("{servo_p95:.1}"),
        "0.0".to_string(),
        servo_qos.to_string(),
    ]);

    // --- Analytic baselines kept for comparison. ---
    for &(players, constructs) in &[
        (PLAYER_ONLY_PLAYERS, 0usize),
        (BORDER_PLAYERS, BORDER_CONSTRUCTS),
    ] {
        let zoned = zoned_tick_durations(
            CostModel::opencraft(),
            4,
            players,
            constructs,
            analytic_ticks,
            4,
        );
        let replicated = replicated_tick_durations(
            CostModel::opencraft(),
            4,
            players,
            constructs,
            analytic_ticks,
            5,
        );
        for (label, durations) in [
            ("Analytic zoning (4 servers)", &zoned),
            ("Analytic replication (4 servers)", &replicated),
        ] {
            let summary = Summary::from_durations(durations);
            table.row(vec![
                label.to_string(),
                players.to_string(),
                constructs.to_string(),
                format!("{:.1}", summary.mean),
                format!("{:.1}", summary.p95),
                "-".to_string(),
                qos_satisfied_default(durations).to_string(),
            ]);
        }
    }
    // Opencraft single-server reference from the shared harness.
    let world = ExperimentWorld::flat_sc(BORDER_CONSTRUCTS);
    let opencraft = measure_tick_durations(
        SystemKind::Opencraft,
        &world,
        BehaviorKind::Bounded { radius: 24.0 },
        BORDER_PLAYERS,
        measure,
        3,
    );
    let summary = Summary::from_durations(&opencraft);
    table.row(vec![
        "Opencraft (1 server)".to_string(),
        BORDER_PLAYERS.to_string(),
        BORDER_CONSTRUCTS.to_string(),
        format!("{:.1}", summary.mean),
        format!("{:.1}", summary.p95),
        "-".to_string(),
        qos_satisfied_default(&opencraft).to_string(),
    ]);

    emit(
        "ablation_multiserver",
        "Ablation: zoning and replication vs Servo under MVE workloads (real ticks)",
        &table,
    );

    let player_only_met = player_only_speedup >= 2.0;
    let border_met = border_speedup < 1.3;
    let json = format!(
        "{{\n  \"experiment\": \"ablation_multiserver\",\n  \"mode\": \"real ticks on ShardedGameCluster\",\n  \
         \"player_only\": {{\"players\": {PLAYER_ONLY_PLAYERS}, \"constructs\": 0, \
         \"zones1_mean_ms\": {:.3}, \"zones4_mean_ms\": {:.3}, \"speedup_4_zones\": {:.3}, \
         \"messages_per_tick_4_zones\": {:.1}}},\n  \
         \"border_constructs\": {{\"players\": {BORDER_PLAYERS}, \"constructs\": {BORDER_CONSTRUCTS}, \
         \"border_spanning\": {}, \"zones1_mean_ms\": {:.3}, \"zones4_mean_ms\": {:.3}, \
         \"speedup_4_zones\": {:.3}, \"messages_per_tick_4_zones\": {:.1}, \"zones4_qos_ok\": {}}},\n  \
         \"servo\": {{\"players\": {BORDER_PLAYERS}, \"constructs\": {BORDER_CONSTRUCTS}, \
         \"mean_ms\": {:.3}, \"p95_ms\": {:.3}, \"qos_ok\": {}}},\n  \
         \"acceptance\": {{\"player_only_speedup_target\": 2.0, \"player_only_met\": {}, \
         \"border_speedup_ceiling\": 1.3, \"border_met\": {}, \"met\": {}}}\n}}\n",
        po_1.mean_ms,
        po_4.mean_ms,
        player_only_speedup,
        po_4.messages_per_tick,
        bc_4.border_constructs,
        bc_1.mean_ms,
        bc_4.mean_ms,
        border_speedup,
        bc_4.messages_per_tick,
        bc_4.qos_ok,
        servo_mean,
        servo_p95,
        servo_qos,
        player_only_met,
        border_met,
        player_only_met && border_met,
    );
    let out_path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("bench crate sits two levels below the workspace root")
        .join("BENCH_multiserver.json");
    std::fs::write(&out_path, &json).expect("BENCH_multiserver.json must be writable");
    println!("[saved {}]", out_path.display());
    println!(
        "Zoning scales the player-only workload {player_only_speedup:.1}x at 4 zones but only \
         {border_speedup:.2}x once {BORDER_CONSTRUCTS} constructs span zone borders \
         ({:.0} cross-server messages per tick); Servo handles the same constructs at \
         {servo_mean:.1} ms mean with QoS {}.",
        bc_4.messages_per_tick,
        if servo_qos { "satisfied" } else { "violated" },
    );
}

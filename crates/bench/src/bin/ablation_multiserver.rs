//! Ablation: how the classic scale-out techniques the paper discusses in
//! Section II-B (zoning and replication) compare with Servo's serverless
//! offloading under MVE workloads.
//!
//! The paper argues — without measuring, because neither technique targets
//! MVEs — that zoning forces frequent cross-server coordination for the
//! modifiable terrain and that replication outright duplicates the
//! environment workload. This ablation quantifies the argument with the same
//! cost model used for the single-server baselines.

use servo_bench::{emit, measure_tick_durations, scaled_secs, ExperimentWorld, SystemKind};
use servo_metrics::{qos_satisfied_default, Summary, Table};
use servo_server::multi::{replicated_tick_durations, zoned_tick_durations};
use servo_server::CostModel;
use servo_types::SimDuration;
use servo_workload::BehaviorKind;

fn summarize(
    label: &str,
    players: usize,
    constructs: usize,
    durations: &[SimDuration],
    table: &mut Table,
) {
    let s = Summary::from_durations(durations);
    table.row(vec![
        label.to_string(),
        players.to_string(),
        constructs.to_string(),
        format!("{:.1}", s.p50),
        format!("{:.1}", s.p95),
        qos_satisfied_default(durations).to_string(),
    ]);
}

fn main() {
    let ticks = (scaled_secs(60).as_secs_f64() * 20.0) as usize;
    let duration = scaled_secs(20);
    let mut table = Table::new(vec![
        "Architecture",
        "Players",
        "Constructs",
        "median tick [ms]",
        "p95 tick [ms]",
        "QoS ok",
    ]);

    for &(players, constructs) in &[(100usize, 0usize), (100, 100), (60, 200)] {
        // Single-server Opencraft (the baseline all of these build on).
        let world = ExperimentWorld::flat_sc(constructs);
        let single = measure_tick_durations(
            SystemKind::Opencraft,
            &world,
            BehaviorKind::Bounded { radius: 24.0 },
            players,
            duration,
            3,
        );
        summarize(
            "Opencraft (1 server)",
            players,
            constructs,
            &single,
            &mut table,
        );

        // Zoning with 4 servers.
        let zoned = zoned_tick_durations(CostModel::opencraft(), 4, players, constructs, ticks, 4);
        summarize(
            "Zoning (4 servers)",
            players,
            constructs,
            &zoned,
            &mut table,
        );

        // Replication with 4 servers.
        let replicated =
            replicated_tick_durations(CostModel::opencraft(), 4, players, constructs, ticks, 5);
        summarize(
            "Replication (4 servers)",
            players,
            constructs,
            &replicated,
            &mut table,
        );

        // Servo (1 server + serverless offloading).
        let servo = measure_tick_durations(
            SystemKind::Servo,
            &world,
            BehaviorKind::Bounded { radius: 24.0 },
            players,
            duration,
            6,
        );
        summarize(
            "Servo (1 server + FaaS)",
            players,
            constructs,
            &servo,
            &mut table,
        );
    }

    emit(
        "ablation_multiserver",
        "Ablation: zoning and replication vs Servo under MVE workloads",
        &table,
    );
    println!(
        "Zoning and replication help player-dominated workloads but not the\n\
         construct-dominated ones; replication duplicates the construct load on\n\
         every replica, exactly as the paper argues in Section II-B."
    );
}

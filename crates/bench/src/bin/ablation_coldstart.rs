//! Ablation: the **serverless platform model** — cold starts, keep-alive,
//! provisioning delay, and saturation queuing — on the hybrid deployment's
//! construct workload under bursty edit storms.
//!
//! Every storm edits one block of every border construct in the same tick,
//! invalidating all in-flight speculation at once: the platform sees a
//! mass re-invocation burst. What happens next depends on platform
//! friction:
//!
//! * with a **short keep-alive**, the warm pool expired during the quiet
//!   gap, so every burst pays a cold start plus the provisioning delay —
//!   constructs fall back to local simulation for the whole round-trip
//!   and tick times collapse toward the zoned baseline;
//! * with the **default keep-alive budget**, containers survive the gap
//!   and bursts run warm — QoS holds, but the platform bills the idle
//!   time the operator paid to keep the pool resident;
//! * with a **container cap + request queue**, burst overflow waits in
//!   FIFO order instead of being rejected, surfacing queue wait in the
//!   invocation latency and `queued`/`peak_queue_depth` stats.
//!
//! The cost/keep-alive frontier — QoS vs billed GB-ms plus warm-idle time
//! — is the headline artefact. The `frictionless` arm is the exact
//! `ablation_hybrid` hybrid workload and must reproduce its numbers; the
//! `infinite_keepalive` arm spells the frictionless platform out
//! explicitly and must match the default tick-for-tick and cent-for-cent.
//!
//! Writes `results/ablation_coldstart.csv` and the acceptance artefact
//! `BENCH_coldstart.json` at the workspace root.

use servo_bench::{emit, scaled_secs};
use servo_core::{HybridDeployment, ServoDeployment};
use servo_metrics::{qos_satisfied_default, Summary, Table};
use servo_redstone::generators;
use servo_server::cluster::{border_construct_sites, place_across_east_seam, ShardedGameCluster};
use servo_simkit::SimRng;
use servo_types::{BlockPos, PlayerId, SimDuration};
use servo_workload::{BehaviorKind, PlayerEvent, PlayerFleet};
use servo_world::ShardMap;

use servo_faas::PlatformConfig;

/// Players in the construct-dominated scenario (same as `ablation_hybrid`).
const PLAYERS: usize = 60;
/// Border-spanning constructs in the frictionless pair — the exact
/// `ablation_hybrid` workload, so that pair reproduces its numbers.
const CONSTRUCTS: usize = 160;
/// Border-spanning constructs in the storm arms: local fallback cost is
/// quadratic in the constructs a zone simulates, so 120 per zone is
/// enough that a full fallback tick (every construct waiting on a cold
/// invocation) visibly breaks the 50 ms budget, while merged speculative
/// states keep the same tick comfortably inside it.
const STORM_CONSTRUCTS: usize = 480;
/// Blocks of wire per border construct.
const CONSTRUCT_WIRES: usize = 14;
/// Zones in every arm.
const ZONES: usize = 4;
/// Provisioning delay of the frictive arms: what a fresh container pays
/// on top of the function's own cold-start latency.
const PROVISIONING_MS: u64 = 500;

fn border_fleet(map: &ShardMap, constructs: usize) -> Vec<servo_redstone::Blueprint> {
    let reference = if map.zones() > 1 {
        map.clone()
    } else {
        ShardMap::contiguous(map.shard_count(), ZONES)
    };
    border_construct_sites(&reference, constructs)
        .into_iter()
        .map(|site| place_across_east_seam(&generators::wire_line(CONSTRUCT_WIRES), site, 6))
        .collect()
}

fn bounded_fleet(seed: u64) -> PlayerFleet {
    let mut fleet = PlayerFleet::new(
        BehaviorKind::Bounded { radius: 24.0 },
        SimRng::seed(seed ^ 0x5eed),
    );
    fleet.connect_all(PLAYERS);
    fleet
}

/// The same deterministic background edit stream `ablation_hybrid` runs,
/// so the frictionless arm reproduces its numbers exactly.
struct EditStream {
    rng: SimRng,
}

impl EditStream {
    fn new(seed: u64) -> Self {
        EditStream {
            rng: SimRng::seed(seed).substream("terrain-edits"),
        }
    }

    fn next_events(&mut self) -> Vec<(PlayerId, PlayerEvent)> {
        (0..2)
            .map(|_| {
                let x = (self.rng.unit() * 81.0) as i32 - 40;
                let z = (self.rng.unit() * 81.0) as i32 - 40;
                let pos = BlockPos::new(x, 9, z);
                let event = if self.rng.unit() < 0.5 {
                    PlayerEvent::BlockPlaced(pos)
                } else {
                    PlayerEvent::BlockBroken(pos)
                };
                let player = (self.rng.unit() * PLAYERS as f64) as u64;
                (PlayerId::new(player.min(PLAYERS as u64 - 1)), event)
            })
            .collect()
    }
}

/// Drives the cluster with the background edit stream plus, when
/// `storm_gap_ticks` is set, a construct-invalidating edit storm: every
/// gap, one block event lands on every border construct in the same tick,
/// dropping all available speculation sequences at once.
fn drive(
    cluster: &mut ShardedGameCluster,
    fleet: &mut PlayerFleet,
    edits: &mut EditStream,
    storm_targets: &[BlockPos],
    storm_gap_ticks: Option<u64>,
    tick_counter: &mut u64,
    duration: SimDuration,
) -> usize {
    let end = cluster.now() + duration;
    let budget = cluster.servers()[0].config().tick_budget();
    let mut ticks = 0;
    while cluster.now() < end {
        let now = cluster.now();
        let mut events = fleet.tick(now, budget);
        events.extend(edits.next_events());
        if let Some(gap) = storm_gap_ticks {
            if *tick_counter % gap == gap - 1 {
                // The storm: every construct takes a hit this tick.
                events.extend(storm_targets.iter().enumerate().map(|(i, &pos)| {
                    (
                        PlayerId::new((i % PLAYERS) as u64),
                        PlayerEvent::BlockPlaced(pos),
                    )
                }));
            }
        }
        let positions = fleet.positions();
        cluster.run_tick(&positions, &events);
        *tick_counter += 1;
        ticks += 1;
    }
    ticks
}

struct ArmResult {
    label: &'static str,
    mean_ms: f64,
    p95_ms: f64,
    p99_ms: f64,
    qos_ok: bool,
    invocations: u64,
    cold_start_rate: f64,
    mean_queue_wait_ms: f64,
    peak_queue_depth: usize,
    provisioned: u64,
    expired_containers: u64,
    billed_gb_ms: f64,
    warm_idle_gb_s: f64,
    cost_usd: f64,
    cost_with_idle_usd: f64,
}

fn run_arm(
    label: &'static str,
    seed: u64,
    platform: PlatformConfig,
    storm_gap_ticks: Option<u64>,
    warmup: SimDuration,
    measure: SimDuration,
) -> ArmResult {
    let mut hybrid: HybridDeployment = ServoDeployment::builder()
        .seed(seed)
        .view_distance(32)
        .sc_platform(platform)
        .hybrid(ZONES);
    let constructs = if storm_gap_ticks.is_some() {
        STORM_CONSTRUCTS
    } else {
        CONSTRUCTS
    };
    let blueprints = border_fleet(&hybrid.cluster.shard_map().clone(), constructs);
    let storm_targets: Vec<BlockPos> = blueprints
        .iter()
        .map(|b| b.positions()[b.positions().len() / 2])
        .collect();
    for blueprint in blueprints {
        hybrid.cluster.add_construct(blueprint);
    }
    let mut fleet = bounded_fleet(seed);
    let mut edits = EditStream::new(seed);
    let mut tick_counter = 0u64;
    drive(
        &mut hybrid.cluster,
        &mut fleet,
        &mut edits,
        &storm_targets,
        storm_gap_ticks,
        &mut tick_counter,
        warmup,
    );
    hybrid.cluster.discard_ticks();
    drive(
        &mut hybrid.cluster,
        &mut fleet,
        &mut edits,
        &storm_targets,
        storm_gap_ticks,
        &mut tick_counter,
        measure,
    );
    let durations = hybrid.cluster.critical_path_durations();
    let summary = Summary::from_durations(&durations);
    let stats = hybrid.sc_platform_stats();
    let billing = hybrid.sc_billing_at(hybrid.cluster.now());
    ArmResult {
        label,
        mean_ms: summary.mean,
        p95_ms: summary.p95,
        p99_ms: summary.p99,
        qos_ok: qos_satisfied_default(&durations),
        invocations: stats.invocations,
        cold_start_rate: stats.cold_starts as f64 / stats.invocations.max(1) as f64,
        mean_queue_wait_ms: stats.queue_wait_ms / stats.queued.max(1) as f64,
        peak_queue_depth: stats.peak_queue_depth,
        provisioned: stats.provisioned,
        expired_containers: stats.expired_containers,
        billed_gb_ms: billing.billed_gb_ms(),
        warm_idle_gb_s: billing.warm_idle_gb_seconds(),
        cost_usd: billing.total_cost_usd(),
        cost_with_idle_usd: billing.total_cost_with_idle_usd(),
    }
}

fn arm_json(arm: &ArmResult) -> String {
    format!(
        "{{\"mean_ms\": {:.3}, \"p95_ms\": {:.3}, \"p99_ms\": {:.3}, \"qos_ok\": {}, \
         \"invocations\": {}, \"cold_start_rate\": {:.4}, \"mean_queue_wait_ms\": {:.3}, \
         \"peak_queue_depth\": {}, \"provisioned\": {}, \"expired_containers\": {}, \
         \"billed_gb_ms\": {:.1}, \"warm_idle_gb_s\": {:.3}, \"cost_usd\": {:.6}, \
         \"cost_with_idle_usd\": {:.6}}}",
        arm.mean_ms,
        arm.p95_ms,
        arm.p99_ms,
        arm.qos_ok,
        arm.invocations,
        arm.cold_start_rate,
        arm.mean_queue_wait_ms,
        arm.peak_queue_depth,
        arm.provisioned,
        arm.expired_containers,
        arm.billed_gb_ms,
        arm.warm_idle_gb_s,
        arm.cost_usd,
        arm.cost_with_idle_usd,
    )
}

fn main() {
    // Floor the windows at SERVO_EXPERIMENT_SCALE=0.3 equivalents: the
    // measure window must cover several 3 s storm cycles or the frontier
    // is unmeasurable (a shorter smoke run would see zero storms).
    let warmup = scaled_secs(10).max(SimDuration::from_secs(3));
    let measure = scaled_secs(20).max(SimDuration::from_secs(6));
    let seed = 13;
    // Burst gaps in ticks (20 Hz): a 3 s storm cadence outlives a 1 s
    // keep-alive budget, an 8 s cadence outlives it even harder.
    let gap_fast = 60;
    let gap_slow = 160;

    let short_keepalive = PlatformConfig::frictionless()
        .with_provisioning_delay(SimDuration::from_millis(PROVISIONING_MS))
        .with_keep_alive(SimDuration::from_secs(1));
    let long_keepalive = PlatformConfig::frictionless()
        .with_provisioning_delay(SimDuration::from_millis(PROVISIONING_MS));
    let queue_capped = short_keepalive
        .with_max_containers(48)
        .with_queue_capacity(512);

    // The frictionless pair: default config vs the same platform spelled
    // out explicitly (zero provisioning, effectively infinite keep-alive).
    let frictionless = run_arm(
        "frictionless",
        seed,
        PlatformConfig::frictionless(),
        None,
        warmup,
        measure,
    );
    let infinite = run_arm(
        "infinite_keepalive",
        seed,
        PlatformConfig::frictionless().with_keep_alive(SimDuration::from_secs(1_000_000)),
        None,
        warmup,
        measure,
    );
    let storm_cold_fast = run_arm(
        "storm3s_keepalive1s",
        seed,
        short_keepalive,
        Some(gap_fast),
        warmup,
        measure,
    );
    let storm_warm_fast = run_arm(
        "storm3s_keepalive_default",
        seed,
        long_keepalive,
        Some(gap_fast),
        warmup,
        measure,
    );
    let storm_cold_slow = run_arm(
        "storm8s_keepalive1s",
        seed,
        short_keepalive,
        Some(gap_slow),
        warmup,
        measure,
    );
    let storm_queue = run_arm(
        "storm3s_queue_capped",
        seed,
        queue_capped,
        Some(gap_fast),
        warmup,
        measure,
    );

    let arms = [
        &frictionless,
        &infinite,
        &storm_cold_fast,
        &storm_warm_fast,
        &storm_cold_slow,
        &storm_queue,
    ];
    let mut table = Table::new(vec![
        "Arm",
        "mean [ms]",
        "p99 [ms]",
        "QoS ok",
        "cold rate",
        "queue wait [ms]",
        "GB-ms",
        "idle [GB-s]",
        "cost+idle [$]",
    ]);
    for arm in arms {
        table.row(vec![
            arm.label.to_string(),
            format!("{:.1}", arm.mean_ms),
            format!("{:.1}", arm.p99_ms),
            arm.qos_ok.to_string(),
            format!("{:.3}", arm.cold_start_rate),
            format!("{:.1}", arm.mean_queue_wait_ms),
            format!("{:.0}", arm.billed_gb_ms),
            format!("{:.1}", arm.warm_idle_gb_s),
            format!("{:.6}", arm.cost_with_idle_usd),
        ]);
    }
    emit(
        "ablation_coldstart",
        "Ablation: cold starts, keep-alive, and queuing under bursty edit storms",
        &table,
    );

    // The frictionless platform spelled out explicitly must be
    // indistinguishable from the default.
    let matches_default = frictionless.mean_ms == infinite.mean_ms
        && frictionless.p99_ms == infinite.p99_ms
        && frictionless.cost_usd == infinite.cost_usd
        && frictionless.cost_with_idle_usd == infinite.cost_with_idle_usd;
    // The frontier: the keep-alive budget converts the storm's QoS
    // violation into qos_ok at measurably higher (idle-inclusive) cost.
    let qos_flip = !storm_cold_fast.qos_ok && storm_warm_fast.qos_ok;
    let cost_ratio = storm_warm_fast.cost_with_idle_usd / storm_cold_fast.cost_with_idle_usd;
    let cost_ordered = cost_ratio > 1.1;
    let met = matches_default && qos_flip && cost_ordered && frictionless.qos_ok;

    let json = format!(
        "{{\n  \"experiment\": \"ablation_coldstart\",\n  \
         \"workload\": {{\"players\": {PLAYERS}, \"border_constructs\": {CONSTRUCTS}, \
         \"storm_constructs\": {STORM_CONSTRUCTS}, \"zones\": {ZONES}, \
         \"storm_gap_fast_ticks\": {gap_fast}, \"storm_gap_slow_ticks\": {gap_slow}, \
         \"provisioning_ms\": {PROVISIONING_MS}}},\n  \
         \"arms\": {{\n    \"frictionless\": {},\n    \"infinite_keepalive\": {},\n    \
         \"storm3s_keepalive1s\": {},\n    \"storm3s_keepalive_default\": {},\n    \
         \"storm8s_keepalive1s\": {},\n    \"storm3s_queue_capped\": {}\n  }},\n  \
         \"acceptance\": {{\"matches_default\": {matches_default}, \"qos_flip\": {qos_flip}, \
         \"keepalive_cost_ratio\": {cost_ratio:.3}, \"cost_ordered\": {cost_ordered}, \
         \"frictionless_qos_ok\": {}, \"met\": {met}}}\n}}\n",
        arm_json(&frictionless),
        arm_json(&infinite),
        arm_json(&storm_cold_fast),
        arm_json(&storm_warm_fast),
        arm_json(&storm_cold_slow),
        arm_json(&storm_queue),
        frictionless.qos_ok,
    );
    let out_path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("bench crate sits two levels below the workspace root")
        .join("BENCH_coldstart.json");
    std::fs::write(&out_path, &json).expect("BENCH_coldstart.json must be writable");
    println!("[saved {}]", out_path.display());
    println!(
        "Keep-alive frontier: storms every 3 s run at {:.1} ms p99 (QoS {}) with a 1 s budget vs \
         {:.1} ms p99 (QoS {}) with the default budget, at {cost_ratio:.2}x the idle-inclusive cost.",
        storm_cold_fast.p99_ms,
        if storm_cold_fast.qos_ok { "ok" } else { "violated" },
        storm_warm_fast.p99_ms,
        if storm_warm_fast.qos_ok { "ok" } else { "violated" },
    );
}

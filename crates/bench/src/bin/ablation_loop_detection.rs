//! Ablation: the loop-detection cost optimization (paper Section III-C1).
//!
//! Looping constructs (clocks, farms) are common in MVE worlds. With loop
//! detection the offload function truncates its reply to one cycle and the
//! server replays it forever; without it every construct keeps being
//! re-offloaded. This ablation measures invocations, cost, and tick-duration
//! impact for a clock-heavy world.

use servo_bench::{emit, scaled_secs};
use servo_core::{ServoConfig, ServoDeployment, SpeculationConfig};
use servo_metrics::{Summary, Table};
use servo_redstone::generators;
use servo_server::ServerConfig;
use servo_simkit::SimRng;
use servo_workload::{BehaviorKind, PlayerFleet};

fn run(loop_detection: bool, constructs: usize) -> (Summary, u64, f64) {
    let duration = scaled_secs(120);
    let config = ServoConfig {
        server: ServerConfig::servo_base().with_view_distance(32),
        speculation: SpeculationConfig {
            loop_detection,
            ..SpeculationConfig::default()
        },
        seed: 77,
        ..ServoConfig::default()
    };
    let mut deployment = ServoDeployment::from_config(config);
    // A world dominated by clocks and lamp rigs: every construct loops.
    deployment
        .server
        .add_constructs(constructs, |i| match i % 2 {
            0 => generators::clock(6 + i % 7),
            _ => generators::lamp_bank(12),
        });
    let mut fleet = PlayerFleet::new(BehaviorKind::Bounded { radius: 24.0 }, SimRng::seed(78));
    fleet.connect_all(50);
    deployment.server.run_with_fleet(&mut fleet, duration);

    let stats = deployment.speculation.stats();
    let cost = deployment.speculation.billing().cost_rate(duration).value();
    (
        Summary::from_durations(&deployment.server.tick_durations()),
        stats.invocations,
        cost,
    )
}

fn main() {
    let mut table = Table::new(vec![
        "Loop detection",
        "Constructs",
        "median tick [ms]",
        "p95 tick [ms]",
        "function invocations",
        "offload cost [$/h]",
    ]);
    for constructs in [100usize, 200] {
        for loop_detection in [true, false] {
            let (ticks, invocations, cost) = run(loop_detection, constructs);
            table.row(vec![
                if loop_detection { "on" } else { "off" }.to_string(),
                constructs.to_string(),
                format!("{:.1}", ticks.p50),
                format!("{:.1}", ticks.p95),
                invocations.to_string(),
                format!("{:.4}", cost),
            ]);
        }
    }
    emit(
        "ablation_loop_detection",
        "Ablation: loop-detection cost optimization for looping constructs",
        &table,
    );
    println!(
        "With loop detection the server replays detected cycles locally and stops\n\
         invoking functions for them, cutting invocations and cost by orders of\n\
         magnitude for clock-heavy worlds at identical tick performance."
    );
}

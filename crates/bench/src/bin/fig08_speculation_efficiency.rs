//! Figure 8: efficiency of offloaded simulation for varying tick leads
//! (left) and varying simulation lengths (right).
//!
//! The paper reports a median efficiency of 84% with no tick lead, 100%
//! when invoking 10–40 ticks in advance, and an efficiency drop for 200-step
//! simulations because the function latency exceeds the lead time.

use servo_bench::{emit, scaled_secs};
use servo_core::{SpeculationConfig, SpeculativeScBackend};
use servo_faas::{FaasPlatform, FunctionConfig};
use servo_metrics::{Summary, Table};
use servo_redstone::{generators, Construct};
use servo_server::ScBackend;
use servo_simkit::SimRng;
use servo_types::{ConstructId, MemoryMb, SimTime, Tick};

/// Runs one configuration for the given number of game ticks and returns
/// the per-invocation efficiency samples.
fn run(config: SpeculationConfig, ticks: u64, seed: u64) -> Vec<f64> {
    let platform = FaasPlatform::new(
        FunctionConfig::aws_like(MemoryMb::new(2048)),
        SimRng::seed(seed),
    );
    let mut backend = SpeculativeScBackend::new(config, platform);
    let mut construct = Construct::new(generators::paper_medium());
    for t in 0..ticks {
        let now = SimTime::from_millis(t * 50);
        backend.resolve(ConstructId::new(0), &mut construct, Tick(t), now);
    }
    backend.handle().stats().efficiency_samples
}

fn main() {
    let ticks = (scaled_secs(90).as_secs_f64() * 20.0) as u64;

    // Left plot: efficiency vs tick lead, 100-step simulations.
    let mut lead_table = Table::new(vec![
        "Tick lead",
        "median efficiency",
        "p5",
        "p95",
        "samples",
        "share at 100%",
    ]);
    for lead in [0u64, 10, 20, 40] {
        let config = SpeculationConfig {
            tick_lead: lead,
            simulation_steps: 100,
            loop_detection: false,
            ..SpeculationConfig::default()
        };
        let samples = run(config, ticks, 0x8E + lead);
        let s = Summary::from_values(&samples);
        let full =
            samples.iter().filter(|e| **e >= 0.999).count() as f64 / samples.len().max(1) as f64;
        lead_table.row(vec![
            lead.to_string(),
            format!("{:.2}", s.p50),
            format!("{:.2}", s.p05),
            format!("{:.2}", s.p95),
            samples.len().to_string(),
            format!("{:.3}", full),
        ]);
    }
    emit(
        "fig08_left_efficiency_vs_tick_lead",
        "Figure 8 (left): efficiency of offloaded simulation vs tick lead",
        &lead_table,
    );

    // Right plot: efficiency vs simulation length, fixed 20-tick lead.
    let mut length_table = Table::new(vec![
        "Simulation steps",
        "median efficiency",
        "p5",
        "p95",
        "samples",
    ]);
    for steps in [50usize, 100, 200] {
        let config = SpeculationConfig {
            tick_lead: 20,
            simulation_steps: steps,
            loop_detection: false,
            ..SpeculationConfig::default()
        };
        let samples = run(config, ticks, 0x900 + steps as u64);
        let s = Summary::from_values(&samples);
        length_table.row(vec![
            steps.to_string(),
            format!("{:.2}", s.p50),
            format!("{:.2}", s.p05),
            format!("{:.2}", s.p95),
            samples.len().to_string(),
        ]);
    }
    emit(
        "fig08_right_efficiency_vs_simulation_length",
        "Figure 8 (right): efficiency vs simulation length (20-tick lead)",
        &length_table,
    );
}

//! Figure 7b: the tick-duration distribution for 10–200 players with 200
//! simulated constructs, for all three systems.
//!
//! The paper shows boxplots (5th/95th-percentile whiskers, maximum printed
//! above each box) and observes that the baselines are bimodal because they
//! simulate constructs only every other tick, while Servo's distribution is
//! narrow and stays below the 50 ms budget up to 120 players.

use servo_bench::{emit, measure_tick_durations, scaled_secs, ExperimentWorld, SystemKind};
use servo_metrics::{Boxplot, Table};
use servo_workload::BehaviorKind;

fn main() {
    let world = ExperimentWorld::flat_sc(200);
    let behavior = BehaviorKind::Bounded { radius: 24.0 };
    let duration = scaled_secs(20);
    let player_counts: Vec<usize> = (1..=20).map(|i| i * 10).collect();

    let mut table = Table::new(vec![
        "Game",
        "Players",
        "p5 [ms]",
        "q1 [ms]",
        "median [ms]",
        "q3 [ms]",
        "p95 [ms]",
        "max [ms]",
        "frac > 50 ms",
    ]);
    for kind in [
        SystemKind::Minecraft,
        SystemKind::Opencraft,
        SystemKind::Servo,
    ] {
        for &players in &player_counts {
            let ticks = measure_tick_durations(kind, &world, behavior, players, duration, 11);
            let values: Vec<f64> = ticks.iter().map(|d| d.as_millis_f64()).collect();
            let b = Boxplot::from_values(&values);
            let over = values.iter().filter(|v| **v > 50.0).count() as f64 / values.len() as f64;
            table.row(vec![
                kind.name().to_string(),
                players.to_string(),
                format!("{:.1}", b.whisker_low),
                format!("{:.1}", b.q1),
                format!("{:.1}", b.median),
                format!("{:.1}", b.q3),
                format!("{:.1}", b.whisker_high),
                format!("{:.0}", b.max),
                format!("{:.3}", over),
            ]);
        }
    }
    emit(
        "fig07b_tick_distribution",
        "Figure 7b: tick duration distribution, 200 simulated constructs",
        &table,
    );
}

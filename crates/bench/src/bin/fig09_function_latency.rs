//! Figure 9: end-to-end latency of the SC-offload function and number of
//! invocations per minute, for varying simulation lengths, plus the derived
//! hourly cost the paper compares against a `c5n.xlarge` instance.

use servo_bench::{emit, scaled_secs};
use servo_core::{SpeculationConfig, SpeculativeScBackend};
use servo_faas::{FaasPlatform, FunctionConfig};
use servo_metrics::{Summary, Table};
use servo_redstone::{generators, Construct};
use servo_server::ScBackend;
use servo_simkit::SimRng;
use servo_types::{ConstructId, MemoryMb, SimDuration, SimTime, Tick, UsdPerHour};

fn main() {
    let duration = scaled_secs(120);
    let ticks = (duration.as_secs_f64() * 20.0) as u64;

    let mut table = Table::new(vec![
        "Simulation steps",
        "mean latency [ms]",
        "median latency [ms]",
        "p95 latency [ms]",
        "invocations / minute",
        "offload cost [$/h]",
        "c5n.xlarge [$/h]",
    ]);
    for steps in [50usize, 100, 200] {
        let config = SpeculationConfig {
            tick_lead: 20,
            simulation_steps: steps,
            loop_detection: false,
            ..SpeculationConfig::default()
        };
        let platform = FaasPlatform::new(
            FunctionConfig::aws_like(MemoryMb::new(2048)),
            SimRng::seed(0xF19 + steps as u64),
        );
        let mut backend = SpeculativeScBackend::new(config, platform);
        let mut construct = Construct::new(generators::paper_medium());
        for t in 0..ticks {
            let now = SimTime::from_millis(t * 50);
            backend.resolve(ConstructId::new(0), &mut construct, Tick(t), now);
        }
        let stats = backend.handle().stats();
        let latencies: Vec<f64> = stats
            .invocation_latencies
            .iter()
            .map(|d| d.as_millis_f64())
            .collect();
        let s = Summary::from_values(&latencies);
        let elapsed = SimDuration::from_millis(ticks * 50);
        let rate = stats.invocations_per_minute(elapsed);
        let cost = backend.handle().billing().cost_rate(elapsed);
        table.row(vec![
            steps.to_string(),
            format!("{:.0}", s.mean),
            format!("{:.0}", s.p50),
            format!("{:.0}", s.p95),
            format!("{:.1}", rate),
            format!("{:.3}", cost.value()),
            format!("{:.3}", UsdPerHour::C5N_XLARGE.value()),
        ]);
    }
    emit(
        "fig09_function_latency",
        "Figure 9: SC-offload function latency, invocation rate, and cost",
        &table,
    );
}

//! The experiment harness.
//!
//! Every table and figure in the paper's evaluation (Section IV) has a
//! corresponding binary in `src/bin/`; this library holds the shared pieces:
//! building the three systems under test (Servo, Opencraft, Minecraft),
//! running capacity sweeps, and writing result tables.
//!
//! Experiment binaries accept the `SERVO_EXPERIMENT_SCALE` environment
//! variable (default `1.0`): values below one shorten experiments for smoke
//! testing, values above one lengthen them for tighter statistics.

#![warn(missing_docs)]

use std::path::PathBuf;

use servo_core::{ServoConfig, ServoDeployment, SpeculationConfig};
use servo_metrics::{max_supported, CapacityResult, Table};
use servo_redstone::generators;
use servo_server::{GameServer, ServerConfig};
use servo_simkit::SimRng;
use servo_types::SimDuration;
use servo_workload::{BehaviorKind, PlayerFleet};
use servo_world::WorldKind;

/// The three systems compared throughout the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SystemKind {
    /// Servo: serverless offloading on top of Opencraft.
    Servo,
    /// The Opencraft research MVE (local simulation, local generation).
    Opencraft,
    /// The official Minecraft server (local simulation, local generation).
    Minecraft,
}

impl SystemKind {
    /// All systems, in the order the paper's figures list them.
    pub const ALL: [SystemKind; 3] = [
        SystemKind::Servo,
        SystemKind::Opencraft,
        SystemKind::Minecraft,
    ];

    /// The display name used in tables.
    pub fn name(&self) -> &'static str {
        match self {
            SystemKind::Servo => "Servo",
            SystemKind::Opencraft => "Opencraft",
            SystemKind::Minecraft => "Minecraft",
        }
    }
}

/// The world and construct setup of an experiment.
#[derive(Debug, Clone, Copy)]
pub struct ExperimentWorld {
    /// View distance in blocks.
    pub view_distance: i32,
    /// World kind (flat for SC experiments, default for terrain
    /// experiments), matching Table I of the paper.
    pub world_kind: WorldKind,
    /// Number of simulated constructs placed in the world.
    pub constructs: usize,
    /// Size of each construct, in blocks.
    pub construct_size: usize,
}

impl ExperimentWorld {
    /// The flat-world setup used by the simulated-construct experiments
    /// (Sections IV-B, IV-C): a small view distance keeps terrain cost out
    /// of the picture.
    pub fn flat_sc(constructs: usize) -> Self {
        ExperimentWorld {
            view_distance: 32,
            world_kind: WorldKind::Flat,
            constructs,
            construct_size: 64,
        }
    }

    /// The default-world setup used by the terrain experiments
    /// (Sections IV-D, IV-E).
    pub fn default_world(view_distance: i32) -> Self {
        ExperimentWorld {
            view_distance,
            world_kind: WorldKind::Default,
            constructs: 0,
            construct_size: 64,
        }
    }
}

/// Builds one of the three systems with the given world setup.
pub fn build_system(kind: SystemKind, world: &ExperimentWorld, seed: u64) -> GameServer {
    let mut server = match kind {
        SystemKind::Servo => {
            let config = ServoConfig {
                server: ServerConfig::servo_base()
                    .with_view_distance(world.view_distance)
                    .with_world_kind(world.world_kind),
                // The capacity and terrain experiments measure the
                // offloading mechanism under continuously active constructs;
                // the loop-replay cost optimization is evaluated separately
                // (ablation_loop_detection), so it is disabled here to avoid
                // trivially replaying the synthetic constructs.
                speculation: SpeculationConfig {
                    loop_detection: false,
                    ..SpeculationConfig::default()
                },
                seed,
                ..ServoConfig::default()
            };
            ServoDeployment::from_config(config).server
        }
        SystemKind::Opencraft => ServoDeployment::opencraft_baseline(
            seed,
            &ServerConfig::opencraft()
                .with_view_distance(world.view_distance)
                .with_world_kind(world.world_kind),
        ),
        SystemKind::Minecraft => ServoDeployment::minecraft_baseline(
            seed,
            &ServerConfig::minecraft()
                .with_view_distance(world.view_distance)
                .with_world_kind(world.world_kind),
        ),
    };
    let size = world.construct_size;
    server.add_constructs(world.constructs, |_| generators::dense_circuit(size));
    server
}

/// Builds a full Servo deployment (server plus serverless handles) with the
/// given world setup.
pub fn build_servo_deployment(world: &ExperimentWorld, seed: u64) -> ServoDeployment {
    let config = ServoConfig {
        server: ServerConfig::servo_base()
            .with_view_distance(world.view_distance)
            .with_world_kind(world.world_kind),
        seed,
        ..ServoConfig::default()
    };
    let mut deployment = ServoDeployment::from_config(config);
    let size = world.construct_size;
    deployment
        .server
        .add_constructs(world.constructs, |_| generators::dense_circuit(size));
    deployment
}

/// The experiment duration scale from `SERVO_EXPERIMENT_SCALE` (default 1).
pub fn experiment_scale() -> f64 {
    std::env::var("SERVO_EXPERIMENT_SCALE")
        .ok()
        .and_then(|v| v.parse::<f64>().ok())
        .filter(|v| *v > 0.0)
        .unwrap_or(1.0)
}

/// Scales a base duration (in virtual seconds) by the experiment scale,
/// with a floor of one second.
pub fn scaled_secs(base: u64) -> SimDuration {
    let secs = (base as f64 * experiment_scale()).max(1.0);
    SimDuration::from_millis((secs * 1000.0) as u64)
}

/// Runs one measurement: `players` connected players following `behavior`
/// against a freshly built system, returning the recorded tick durations
/// after a short warm-up.
pub fn measure_tick_durations(
    kind: SystemKind,
    world: &ExperimentWorld,
    behavior: BehaviorKind,
    players: usize,
    duration: SimDuration,
    seed: u64,
) -> Vec<SimDuration> {
    let mut server = build_system(kind, world, seed);
    let mut fleet = PlayerFleet::new(behavior, SimRng::seed(seed ^ 0x5eed));
    fleet.connect_all(players);
    // Warm-up: let the terrain around spawn load and speculation get
    // established, then discard those ticks, as the paper's measurements do.
    server.run_with_fleet(&mut fleet, SimDuration::from_secs(15));
    server.discard_reports();
    server.run_with_fleet(&mut fleet, duration);
    server.tick_durations()
}

/// Sweeps player counts and reports the maximum number of supported players
/// for one system, using the paper's QoS rule (<5% of ticks above 50 ms).
pub fn measure_capacity(
    kind: SystemKind,
    world: &ExperimentWorld,
    behavior: BehaviorKind,
    player_counts: &[u32],
    duration: SimDuration,
    seed: u64,
) -> CapacityResult {
    let mut consecutive_failures = 0u32;
    let mut skip_rest = false;
    max_supported(player_counts, |players| {
        if skip_rest {
            // Once a system has clearly collapsed, avoid wasting time on
            // even larger player counts: report an over-budget sample.
            return vec![SimDuration::from_millis(1000)];
        }
        let ticks = measure_tick_durations(kind, world, behavior, players as usize, duration, seed);
        if servo_metrics::qos_satisfied_default(&ticks) {
            consecutive_failures = 0;
        } else {
            consecutive_failures += 1;
            if consecutive_failures >= 3 {
                skip_rest = true;
            }
        }
        ticks
    })
}

/// The directory experiment binaries write their outputs to.
pub fn results_dir() -> PathBuf {
    let dir = PathBuf::from("results");
    std::fs::create_dir_all(&dir).expect("results directory must be creatable");
    dir
}

/// Prints a table to stdout and writes it as CSV under `results/<name>.csv`.
pub fn emit(name: &str, title: &str, table: &Table) {
    println!("\n=== {title} ===");
    println!("{}", table.render());
    let path = results_dir().join(format!("{name}.csv"));
    std::fs::write(&path, table.to_csv()).expect("results CSV must be writable");
    println!("[saved {}]", path.display());
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn systems_build_with_constructs() {
        let world = ExperimentWorld::flat_sc(3);
        for kind in SystemKind::ALL {
            let server = build_system(kind, &world, 1);
            assert_eq!(server.construct_count(), 3);
            assert_eq!(server.config().view_distance_blocks, 32);
        }
        assert_eq!(SystemKind::Servo.name(), "Servo");
    }

    #[test]
    fn scaled_secs_has_a_floor() {
        std::env::remove_var("SERVO_EXPERIMENT_SCALE");
        assert_eq!(scaled_secs(10), SimDuration::from_secs(10));
        assert!(scaled_secs(0) >= SimDuration::from_secs(1));
    }

    #[test]
    fn capacity_sweep_runs_quickly_on_tiny_setup() {
        let world = ExperimentWorld::flat_sc(0);
        let result = measure_capacity(
            SystemKind::Opencraft,
            &world,
            BehaviorKind::Bounded { radius: 24.0 },
            &[10, 20],
            SimDuration::from_secs(2),
            7,
        );
        assert_eq!(result.max_players, 20);
    }

    #[test]
    fn measure_tick_durations_returns_samples() {
        let world = ExperimentWorld::flat_sc(2);
        let ticks = measure_tick_durations(
            SystemKind::Servo,
            &world,
            BehaviorKind::Bounded { radius: 24.0 },
            5,
            SimDuration::from_secs(2),
            3,
        );
        assert!(ticks.len() >= 30);
    }
}

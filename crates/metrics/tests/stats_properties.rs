//! Property-based tests for the measurement utilities.

use proptest::prelude::*;
use servo_metrics::{ccdf_points, percentile, qos_satisfied, Boxplot, Summary};
use servo_types::SimDuration;

proptest! {
    /// Percentiles are monotone in the quantile and bounded by min/max.
    #[test]
    fn percentiles_are_monotone_and_bounded(
        values in prop::collection::vec(0.0f64..10_000.0, 1..300),
        q1 in 0.0f64..1.0,
        q2 in 0.0f64..1.0,
    ) {
        let (lo, hi) = if q1 <= q2 { (q1, q2) } else { (q2, q1) };
        let p_lo = percentile(&values, lo);
        let p_hi = percentile(&values, hi);
        prop_assert!(p_lo <= p_hi + 1e-9);
        let min = values.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = values.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        prop_assert!(p_lo >= min - 1e-9 && p_hi <= max + 1e-9);
    }

    /// Summary invariants: ordering of the reported percentiles and the mean
    /// lying between min and max.
    #[test]
    fn summary_is_internally_consistent(values in prop::collection::vec(-1000.0f64..1000.0, 1..300)) {
        let s = Summary::from_values(&values);
        prop_assert_eq!(s.count, values.len());
        prop_assert!(s.min <= s.p05 && s.p05 <= s.p25 && s.p25 <= s.p50);
        prop_assert!(s.p50 <= s.p75 && s.p75 <= s.p95 && s.p95 <= s.p99);
        prop_assert!(s.p99 <= s.p999 && s.p999 <= s.max);
        prop_assert!(s.mean >= s.min - 1e-9 && s.mean <= s.max + 1e-9);
        let b = Boxplot::from_values(&values);
        prop_assert!(b.whisker_low <= b.median && b.median <= b.whisker_high);
    }

    /// The CCDF starts at fraction 1, is strictly decreasing, and every
    /// fraction is consistent with a direct count.
    #[test]
    fn ccdf_matches_direct_counts(values in prop::collection::vec(0.0f64..500.0, 1..200)) {
        let points = ccdf_points(&values);
        prop_assert_eq!(points[0].fraction, 1.0);
        for pair in points.windows(2) {
            prop_assert!(pair[0].value < pair[1].value);
            prop_assert!(pair[0].fraction > pair[1].fraction);
        }
        for point in &points {
            let count = values.iter().filter(|v| **v >= point.value).count();
            prop_assert!((point.fraction - count as f64 / values.len() as f64).abs() < 1e-9);
        }
    }

    /// The QoS rule agrees with a direct violation count for any threshold.
    #[test]
    fn qos_rule_matches_direct_count(
        millis in prop::collection::vec(1u64..200, 1..400),
        budget_ms in 10u64..100,
        fraction in 0.01f64..0.2,
    ) {
        let ticks: Vec<SimDuration> = millis.iter().map(|&m| SimDuration::from_millis(m)).collect();
        let budget = SimDuration::from_millis(budget_ms);
        let violations = millis.iter().filter(|&&m| m > budget_ms).count();
        let expected = (violations as f64) < fraction * millis.len() as f64;
        prop_assert_eq!(qos_satisfied(&ticks, budget, fraction), expected);
    }
}

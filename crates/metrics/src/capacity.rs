//! The "maximum number of supported players" metric.
//!
//! The paper defines the maximum number of supported players as the largest
//! player count for which less than 5% of tick-duration samples exceed the
//! 50 ms tick budget (Section IV-B).

use servo_types::{consts, SimDuration};

/// Whether a set of tick durations satisfies the QoS rule: less than
/// `violation_fraction` of samples exceed `budget`.
///
/// # Example
///
/// ```
/// use servo_metrics::qos_satisfied;
/// use servo_types::SimDuration;
///
/// let good: Vec<SimDuration> = (0..100).map(|_| SimDuration::from_millis(30)).collect();
/// assert!(qos_satisfied(&good, SimDuration::from_millis(50), 0.05));
///
/// let bad: Vec<SimDuration> = (0..100)
///     .map(|i| SimDuration::from_millis(if i < 10 { 80 } else { 30 }))
///     .collect();
/// assert!(!qos_satisfied(&bad, SimDuration::from_millis(50), 0.05));
/// ```
pub fn qos_satisfied(
    tick_durations: &[SimDuration],
    budget: SimDuration,
    violation_fraction: f64,
) -> bool {
    if tick_durations.is_empty() {
        return false;
    }
    let violations = tick_durations.iter().filter(|&&d| d > budget).count();
    (violations as f64) < violation_fraction * tick_durations.len() as f64
}

/// Whether tick durations satisfy the paper's default rule: fewer than 5% of
/// samples above 50 ms.
pub fn qos_satisfied_default(tick_durations: &[SimDuration]) -> bool {
    qos_satisfied(
        tick_durations,
        consts::TICK_BUDGET,
        consts::QOS_VIOLATION_FRACTION,
    )
}

/// The outcome of a capacity search.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CapacityResult {
    /// The largest player count that satisfied the QoS rule, or zero if even
    /// the smallest tested count failed (the paper reports "0 players(!)"
    /// for Opencraft and Minecraft at 200 simulated constructs).
    pub max_players: u32,
    /// Every player count that was evaluated, with its pass/fail outcome.
    pub evaluated: Vec<(u32, bool)>,
}

impl CapacityResult {
    /// Player counts that passed the QoS rule.
    pub fn passing_counts(&self) -> Vec<u32> {
        self.evaluated
            .iter()
            .filter(|(_, ok)| *ok)
            .map(|(n, _)| *n)
            .collect()
    }
}

/// Finds the maximum supported player count by evaluating `run` (which maps a
/// player count to the tick durations observed at that count) over the given
/// candidate counts, in increasing order.
///
/// The search mirrors the paper's methodology: player counts are swept
/// upward and the maximum reported is the largest count whose samples pass
/// the QoS rule. The sweep continues past a failing count (the paper's
/// Figure 7b shows all counts), so a temporary dip does not truncate the
/// search; the *largest* passing count is returned.
pub fn max_supported<F>(candidates: &[u32], mut run: F) -> CapacityResult
where
    F: FnMut(u32) -> Vec<SimDuration>,
{
    let mut evaluated = Vec::with_capacity(candidates.len());
    let mut max_players = 0;
    for &n in candidates {
        let ticks = run(n);
        let ok = qos_satisfied_default(&ticks);
        if ok {
            max_players = max_players.max(n);
        }
        evaluated.push((n, ok));
    }
    CapacityResult {
        max_players,
        evaluated,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ticks_ms(ms: u64, n: usize) -> Vec<SimDuration> {
        (0..n).map(|_| SimDuration::from_millis(ms)).collect()
    }

    #[test]
    fn empty_samples_never_satisfy_qos() {
        assert!(!qos_satisfied_default(&[]));
    }

    #[test]
    fn exactly_five_percent_violations_fail() {
        // 5 of 100 samples above budget is NOT "< 5%".
        let mut ticks = ticks_ms(30, 95);
        ticks.extend(ticks_ms(60, 5));
        assert!(!qos_satisfied_default(&ticks));
        // 4 of 100 passes.
        let mut ticks = ticks_ms(30, 96);
        ticks.extend(ticks_ms(60, 4));
        assert!(qos_satisfied_default(&ticks));
    }

    #[test]
    fn boundary_value_is_not_a_violation() {
        // Exactly 50 ms does not exceed the budget.
        assert!(qos_satisfied_default(&ticks_ms(50, 100)));
        assert!(!qos_satisfied_default(&ticks_ms(51, 100)));
    }

    #[test]
    fn capacity_search_finds_threshold() {
        let candidates: Vec<u32> = (1..=20).map(|i| i * 10).collect();
        // Model: tick time = players / 4 ms, so the budget of 50 ms breaks at
        // >200... use players / 2 to break at >100.
        let result = max_supported(&candidates, |players| ticks_ms((players / 2) as u64, 200));
        assert_eq!(result.max_players, 100);
        assert_eq!(result.evaluated.len(), 20);
        assert_eq!(result.passing_counts().last(), Some(&100));
    }

    #[test]
    fn capacity_zero_when_all_fail() {
        let result = max_supported(&[10, 20], |_| ticks_ms(80, 50));
        assert_eq!(result.max_players, 0);
        assert!(result.passing_counts().is_empty());
    }

    #[test]
    fn capacity_reports_largest_passing_count_even_after_dip() {
        // 10 passes, 20 fails, 30 passes: the paper reports the largest.
        let result = max_supported(&[10, 20, 30], |n| match n {
            20 => ticks_ms(70, 100),
            _ => ticks_ms(20, 100),
        });
        assert_eq!(result.max_players, 30);
    }
}

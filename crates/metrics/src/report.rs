//! A uniform snapshot interface over per-subsystem statistics structs.
//!
//! Every subsystem in the workspace accumulates its own counters —
//! `ClusterStats` for the zoned bus, `PlatformStats` for the FaaS
//! platform, `SpeculationStats` for the offloading unit, and so on. The
//! experiment binaries used to hand-roll a formatting block per struct;
//! [`StatsReport`] replaces that with one `report()` → key/value rows
//! method, and [`report_table`] renders any set of snapshots as a single
//! [`Table`] ready for stdout or CSV export.
//!
//! # Example
//!
//! ```
//! use servo_metrics::{report_table, StatsReport};
//!
//! struct Demo {
//!     hits: u64,
//! }
//! impl StatsReport for Demo {
//!     fn section(&self) -> &'static str {
//!         "demo"
//!     }
//!     fn report(&self) -> Vec<(&'static str, String)> {
//!         vec![("hits", self.hits.to_string())]
//!     }
//! }
//!
//! let table = report_table(&[&Demo { hits: 3 }]);
//! assert!(table.render().contains("demo"));
//! assert!(table.to_csv().contains("hits,3"));
//! ```

use crate::Table;

/// A snapshot of a subsystem's counters as uniform key/value rows.
///
/// Implementors should emit rows in a stable, documented order (struct
/// field order is the convention) and format values the way a human
/// reading the experiment table expects — raw counts as integers,
/// durations and ratios with a small fixed precision.
pub trait StatsReport {
    /// Short stable name of the subsystem this snapshot belongs to
    /// (`"cluster"`, `"platform"`, `"replication"`, ...). Used as the
    /// first column of [`report_table`] so several snapshots can share
    /// one table.
    fn section(&self) -> &'static str;

    /// The snapshot as `(metric, value)` rows, in stable order.
    fn report(&self) -> Vec<(&'static str, String)>;
}

/// Renders any collection of [`StatsReport`] snapshots as one
/// `section / metric / value` table.
pub fn report_table(reports: &[&dyn StatsReport]) -> Table {
    let mut table = Table::new(vec!["section", "metric", "value"]);
    for report in reports {
        for (metric, value) in report.report() {
            table.row(vec![
                report.section().to_string(),
                metric.to_string(),
                value,
            ]);
        }
    }
    table
}

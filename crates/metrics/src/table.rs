//! Plain-text tables and CSV output for experiment results.

use std::fmt::Write as _;

/// A simple column-aligned table used by the experiment binaries to print
/// paper-style result tables to stdout and to export CSV files.
///
/// # Example
///
/// ```
/// use servo_metrics::Table;
/// let mut t = Table::new(vec!["game", "players"]);
/// t.row(vec!["Servo".to_string(), "150".to_string()]);
/// let text = t.render();
/// assert!(text.contains("Servo"));
/// assert!(t.to_csv().starts_with("game,players"));
/// ```
#[derive(Debug, Clone, Default)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new<S: Into<String>>(headers: Vec<S>) -> Self {
        Table {
            headers: headers.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row. Rows shorter than the header are padded with empty
    /// cells; longer rows are truncated.
    pub fn row(&mut self, mut cells: Vec<String>) -> &mut Self {
        cells.resize(self.headers.len(), String::new());
        self.rows.push(cells);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table as aligned plain text.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let write_row = |cells: &[String], out: &mut String| {
            for (i, cell) in cells.iter().enumerate() {
                let _ = write!(out, "{:<width$}  ", cell, width = widths[i]);
            }
            out.push('\n');
        };
        write_row(&self.headers, &mut out);
        let total: usize = widths.iter().map(|w| w + 2).sum();
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            write_row(row, &mut out);
        }
        out
    }

    /// Renders the table as CSV (comma-separated, quoting cells containing
    /// commas or quotes).
    pub fn to_csv(&self) -> String {
        fn escape(cell: &str) -> String {
            if cell.contains(',') || cell.contains('"') || cell.contains('\n') {
                format!("\"{}\"", cell.replace('"', "\"\""))
            } else {
                cell.to_string()
            }
        }
        let mut out = String::new();
        out.push_str(
            &self
                .headers
                .iter()
                .map(|h| escape(h))
                .collect::<Vec<_>>()
                .join(","),
        );
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.iter().map(|c| escape(c)).collect::<Vec<_>>().join(","));
            out.push('\n');
        }
        out
    }
}

/// Formats a float with a fixed number of decimals, for table cells.
pub fn fmt_f64(value: f64, decimals: usize) -> String {
    format!("{value:.decimals$}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_aligns_columns_and_contains_data() {
        let mut t = Table::new(vec!["a", "long header"]);
        t.row(vec!["x".into(), "1".into()]);
        t.row(vec!["yyyy".into(), "22".into()]);
        let text = t.render();
        assert!(text.contains("long header"));
        assert!(text.contains("yyyy"));
        assert!(text.lines().count() >= 4);
    }

    #[test]
    fn short_rows_are_padded() {
        let mut t = Table::new(vec!["a", "b", "c"]);
        t.row(vec!["only one".into()]);
        assert_eq!(t.len(), 1);
        let csv = t.to_csv();
        assert_eq!(csv.lines().nth(1).unwrap(), "only one,,");
    }

    #[test]
    fn csv_escapes_special_characters() {
        let mut t = Table::new(vec!["name"]);
        t.row(vec!["a,b".into()]);
        t.row(vec!["say \"hi\"".into()]);
        let csv = t.to_csv();
        assert!(csv.contains("\"a,b\""));
        assert!(csv.contains("\"say \"\"hi\"\"\""));
    }

    #[test]
    fn fmt_f64_rounds() {
        assert_eq!(fmt_f64(1.23456, 2), "1.23");
        assert_eq!(fmt_f64(1.0, 0), "1");
    }

    #[test]
    fn empty_table_is_empty() {
        let t = Table::new(vec!["h"]);
        assert!(t.is_empty());
        assert!(t.render().contains('h'));
    }
}

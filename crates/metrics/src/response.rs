//! Player-perceived response time.
//!
//! The paper's operational model (Section II-A) defines the response time
//! `t_r` of a player action as the time between the action being issued and
//! its effect becoming visible to all players: one network traversal to the
//! server (`t_n`), waiting for the next simulation step, the step itself
//! (`t_s`), and the network traversal back. This module derives response-time
//! distributions from measured tick durations so experiments can relate
//! server-side tick behaviour to the latency thresholds per game genre shown
//! in Figure 3.

use servo_types::{consts, SimDuration};

use crate::summary::Summary;

/// The game-genre latency classes of Claypool & Claypool, as used by the
/// paper's Figure 3 thresholds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum GenreThreshold {
    /// First-person games: ~100 ms. MVEs such as Minecraft fall here.
    FirstPerson,
    /// Third-person / RPG games: ~500 ms.
    ThirdPerson,
    /// Omnipresent (RTS) games: ~1000 ms.
    Omnipresent,
}

impl GenreThreshold {
    /// The threshold value in milliseconds.
    pub fn millis(self) -> f64 {
        match self {
            GenreThreshold::FirstPerson => consts::FPS_LATENCY_THRESHOLD_MS as f64,
            GenreThreshold::ThirdPerson => consts::RPG_LATENCY_THRESHOLD_MS as f64,
            GenreThreshold::Omnipresent => consts::RTS_LATENCY_THRESHOLD_MS as f64,
        }
    }
}

/// Computes per-action response times (milliseconds) from a series of tick
/// durations.
///
/// The model follows Section II-A of the paper, assuming symmetric network
/// latency: an action issued at a uniformly random point within a tick waits
/// on average half a tick interval before the next simulation step begins,
/// is processed by that step, and its result is shipped back.
///
/// `network_one_way_ms` is `t_n`; each tick-duration sample produces one
/// response-time sample.
pub fn response_times(tick_durations: &[SimDuration], network_one_way_ms: f64) -> Vec<f64> {
    let half_interval = consts::TICK_BUDGET.as_millis_f64() / 2.0;
    tick_durations
        .iter()
        .map(|t_s| 2.0 * network_one_way_ms.max(0.0) + half_interval + t_s.as_millis_f64())
        .collect()
}

/// Summary of a response-time distribution together with the fraction of
/// actions exceeding each genre threshold.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ResponseSummary {
    /// Distribution summary of the response times, in milliseconds.
    pub summary: Summary,
    /// Fraction of actions above the first-person threshold (100 ms).
    pub over_first_person: f64,
    /// Fraction of actions above the third-person threshold (500 ms).
    pub over_third_person: f64,
    /// Fraction of actions above the omnipresent threshold (1000 ms).
    pub over_omnipresent: f64,
}

/// Builds a [`ResponseSummary`] from tick durations and a one-way network
/// latency.
pub fn response_summary(
    tick_durations: &[SimDuration],
    network_one_way_ms: f64,
) -> ResponseSummary {
    let times = response_times(tick_durations, network_one_way_ms);
    ResponseSummary {
        summary: Summary::from_values(&times),
        over_first_person: Summary::fraction_above(&times, GenreThreshold::FirstPerson.millis()),
        over_third_person: Summary::fraction_above(&times, GenreThreshold::ThirdPerson.millis()),
        over_omnipresent: Summary::fraction_above(&times, GenreThreshold::Omnipresent.millis()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ticks(ms: u64, n: usize) -> Vec<SimDuration> {
        (0..n).map(|_| SimDuration::from_millis(ms)).collect()
    }

    #[test]
    fn response_time_composition() {
        // 20 ms one-way network, 30 ms tick: 20 + 20 + 25 (half interval) + 30.
        let times = response_times(&ticks(30, 4), 20.0);
        assert_eq!(times.len(), 4);
        for t in times {
            assert!((t - 95.0).abs() < 1e-9);
        }
    }

    #[test]
    fn negative_network_latency_is_clamped() {
        let times = response_times(&ticks(10, 1), -5.0);
        assert!((times[0] - 35.0).abs() < 1e-9);
    }

    #[test]
    fn genre_thresholds_are_ordered() {
        assert!(GenreThreshold::FirstPerson.millis() < GenreThreshold::ThirdPerson.millis());
        assert!(GenreThreshold::ThirdPerson.millis() < GenreThreshold::Omnipresent.millis());
    }

    #[test]
    fn healthy_server_meets_first_person_budget_on_lan() {
        // 30 ms ticks and 10 ms network stay under the 100 ms first-person
        // threshold.
        let summary = response_summary(&ticks(30, 100), 10.0);
        assert_eq!(summary.over_first_person, 0.0);
        assert_eq!(summary.over_omnipresent, 0.0);
        assert!(summary.summary.p50 < 100.0);
    }

    #[test]
    fn overloaded_server_violates_first_person_budget() {
        // 90 ms ticks blow the first-person budget even with zero network
        // latency, but remain acceptable for slower genres.
        let summary = response_summary(&ticks(90, 100), 0.0);
        assert_eq!(summary.over_first_person, 1.0);
        assert_eq!(summary.over_third_person, 0.0);
    }

    #[test]
    fn empty_input_gives_empty_distribution() {
        let summary = response_summary(&[], 10.0);
        assert_eq!(summary.summary.count, 0);
        assert_eq!(summary.over_first_person, 0.0);
    }
}

//! Inverse (complementary) cumulative distribution functions.
//!
//! Figure 13 of the paper plots, for each latency `x`, the *fraction of
//! operations with latency at least `x`* on a logarithmic axis. This module
//! produces those curves from raw samples.

/// One point of a complementary CDF: `fraction` of samples are `>= value`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CcdfPoint {
    /// The sample value (e.g. latency in milliseconds).
    pub value: f64,
    /// Fraction of samples greater than or equal to `value`, in `(0, 1]`.
    pub fraction: f64,
}

/// Computes the complementary CDF of `samples`.
///
/// The returned points are sorted by increasing `value`, with `fraction`
/// decreasing from 1 towards `1/n`. Duplicate values are merged.
///
/// # Example
///
/// ```
/// use servo_metrics::ccdf_points;
/// let pts = ccdf_points(&[1.0, 2.0, 2.0, 4.0]);
/// assert_eq!(pts[0].value, 1.0);
/// assert_eq!(pts[0].fraction, 1.0);
/// assert_eq!(pts.last().unwrap().value, 4.0);
/// assert_eq!(pts.last().unwrap().fraction, 0.25);
/// ```
pub fn ccdf_points(samples: &[f64]) -> Vec<CcdfPoint> {
    if samples.is_empty() {
        return Vec::new();
    }
    let mut sorted = samples.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    let n = sorted.len() as f64;
    let mut points = Vec::new();
    let mut i = 0;
    while i < sorted.len() {
        let value = sorted[i];
        // All samples at indices >= i are >= value.
        let fraction = (sorted.len() - i) as f64 / n;
        points.push(CcdfPoint { value, fraction });
        // Skip duplicates.
        while i < sorted.len() && sorted[i] == value {
            i += 1;
        }
    }
    points
}

/// Returns the fraction of samples that are at least `threshold`.
pub fn fraction_at_least(samples: &[f64], threshold: f64) -> f64 {
    if samples.is_empty() {
        return 0.0;
    }
    samples.iter().filter(|&&s| s >= threshold).count() as f64 / samples.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_input_gives_empty_curve() {
        assert!(ccdf_points(&[]).is_empty());
    }

    #[test]
    fn fractions_are_monotonically_decreasing() {
        let samples: Vec<f64> = (0..500).map(|i| ((i * 37) % 113) as f64).collect();
        let pts = ccdf_points(&samples);
        for w in pts.windows(2) {
            assert!(w[0].value < w[1].value);
            assert!(w[0].fraction > w[1].fraction);
        }
        assert_eq!(pts[0].fraction, 1.0);
    }

    #[test]
    fn duplicates_are_merged() {
        let pts = ccdf_points(&[3.0, 3.0, 3.0]);
        assert_eq!(pts.len(), 1);
        assert_eq!(pts[0].fraction, 1.0);
    }

    #[test]
    fn fraction_at_least_matches_curve() {
        let samples = vec![10.0, 20.0, 30.0, 40.0];
        assert_eq!(fraction_at_least(&samples, 25.0), 0.5);
        assert_eq!(fraction_at_least(&samples, 10.0), 1.0);
        assert_eq!(fraction_at_least(&samples, 41.0), 0.0);
        assert_eq!(fraction_at_least(&[], 1.0), 0.0);
    }
}

//! Rolling percentile bands over a time series.
//!
//! Figures 10 and 12a of the paper show tick duration over time as a rolling
//! arithmetic mean with a band between the rolling 5th and 95th percentiles,
//! computed over a 2.5-second window.

use servo_types::{SimDuration, SimTime};

use crate::summary::percentile;

/// A timestamped sample.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TimePoint {
    /// When the sample was taken.
    pub at: SimTime,
    /// The sample value (milliseconds for tick durations).
    pub value: f64,
}

/// One aggregated window of a rolling band.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BandPoint {
    /// Centre time of the window.
    pub at: SimTime,
    /// Rolling 5th percentile.
    pub p05: f64,
    /// Rolling arithmetic mean.
    pub mean: f64,
    /// Rolling 95th percentile.
    pub p95: f64,
}

/// Computes rolling percentile bands over a time series.
///
/// # Example
///
/// ```
/// use servo_metrics::{RollingBands, TimePoint};
/// use servo_types::{SimDuration, SimTime};
///
/// let series: Vec<TimePoint> = (0..100)
///     .map(|i| TimePoint { at: SimTime::from_millis(i * 50), value: 20.0 + (i % 3) as f64 })
///     .collect();
/// let bands = RollingBands::new(SimDuration::from_millis(2500)).compute(&series);
/// assert!(!bands.is_empty());
/// assert!(bands.iter().all(|b| b.p05 <= b.mean && b.mean <= b.p95));
/// ```
#[derive(Debug, Clone, Copy)]
pub struct RollingBands {
    window: SimDuration,
}

impl RollingBands {
    /// Creates a rolling-band computation with the given window length.
    pub fn new(window: SimDuration) -> Self {
        RollingBands { window }
    }

    /// The 2.5-second window the paper uses.
    pub fn paper_default() -> Self {
        RollingBands::new(SimDuration::from_millis(2500))
    }

    /// Aggregates the series into consecutive windows; each window produces
    /// one [`BandPoint`] centred on the window. Samples must be provided in
    /// any order; they are grouped by timestamp.
    pub fn compute(&self, series: &[TimePoint]) -> Vec<BandPoint> {
        if series.is_empty() {
            return Vec::new();
        }
        let window_us = self.window.as_micros().max(1);
        let mut sorted: Vec<&TimePoint> = series.iter().collect();
        sorted.sort_by_key(|p| p.at);
        let start = sorted[0].at.as_micros();

        let mut bands = Vec::new();
        let mut bucket: Vec<f64> = Vec::new();
        let mut bucket_index = 0u64;
        for p in sorted {
            let idx = (p.at.as_micros() - start) / window_us;
            if idx != bucket_index && !bucket.is_empty() {
                bands.push(Self::finish_bucket(start, bucket_index, window_us, &bucket));
                bucket.clear();
            }
            bucket_index = idx;
            bucket.push(p.value);
        }
        if !bucket.is_empty() {
            bands.push(Self::finish_bucket(start, bucket_index, window_us, &bucket));
        }
        bands
    }

    fn finish_bucket(start: u64, index: u64, window_us: u64, values: &[f64]) -> BandPoint {
        let centre = start + index * window_us + window_us / 2;
        BandPoint {
            at: SimTime::from_micros(centre),
            p05: percentile(values, 0.05),
            mean: values.iter().sum::<f64>() / values.len() as f64,
            p95: percentile(values, 0.95),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn series(n: u64, period_ms: u64, f: impl Fn(u64) -> f64) -> Vec<TimePoint> {
        (0..n)
            .map(|i| TimePoint {
                at: SimTime::from_millis(i * period_ms),
                value: f(i),
            })
            .collect()
    }

    #[test]
    fn empty_series_gives_no_bands() {
        let bands = RollingBands::paper_default().compute(&[]);
        assert!(bands.is_empty());
    }

    #[test]
    fn constant_series_has_flat_bands() {
        let s = series(200, 50, |_| 25.0);
        let bands = RollingBands::paper_default().compute(&s);
        assert!(!bands.is_empty());
        for b in bands {
            assert_eq!(b.p05, 25.0);
            assert_eq!(b.mean, 25.0);
            assert_eq!(b.p95, 25.0);
        }
    }

    #[test]
    fn band_count_matches_duration_over_window() {
        // 200 ticks at 50 ms = 10 s; 2.5 s windows -> 4 bands.
        let s = series(200, 50, |i| i as f64);
        let bands = RollingBands::paper_default().compute(&s);
        assert_eq!(bands.len(), 4);
        // Band centres are increasing.
        assert!(bands.windows(2).all(|w| w[0].at < w[1].at));
    }

    #[test]
    fn bands_are_ordered_p05_mean_p95() {
        let s = series(500, 50, |i| ((i * 31) % 67) as f64);
        for b in RollingBands::paper_default().compute(&s) {
            assert!(b.p05 <= b.mean + 1e-9);
            assert!(b.mean <= b.p95 + 1e-9);
        }
    }

    #[test]
    fn unsorted_input_is_handled() {
        let mut s = series(100, 50, |i| i as f64);
        s.reverse();
        let bands = RollingBands::paper_default().compute(&s);
        assert_eq!(bands.len(), 2);
    }
}

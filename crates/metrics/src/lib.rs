//! Measurement utilities shared by the experiments.
//!
//! The paper reports its results as percentiles, boxplots, inverse CDFs,
//! rolling percentile bands over time, and a derived "maximum number of
//! supported players" metric. This crate implements all of those so every
//! experiment binary computes them in exactly the same way.
//!
//! # Example
//!
//! ```
//! use servo_metrics::{Summary, capacity::qos_satisfied};
//! use servo_types::SimDuration;
//!
//! let ticks: Vec<SimDuration> = (0..100).map(|i| SimDuration::from_millis(20 + i % 5)).collect();
//! let summary = Summary::from_durations(&ticks);
//! assert!(summary.p95 < 50.0);
//! assert!(qos_satisfied(&ticks, SimDuration::from_millis(50), 0.05));
//! ```

#![warn(missing_docs)]

pub mod capacity;
pub mod icdf;
pub mod report;
pub mod response;
pub mod rolling;
pub mod summary;
pub mod table;

pub use capacity::{max_supported, qos_satisfied, qos_satisfied_default, CapacityResult};
pub use icdf::ccdf_points;
pub use report::{report_table, StatsReport};
pub use response::{response_summary, response_times, GenreThreshold, ResponseSummary};
pub use rolling::{RollingBands, TimePoint};
pub use summary::{percentile, Boxplot, Summary};
pub use table::Table;

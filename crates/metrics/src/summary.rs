//! Percentiles, summary statistics, and boxplot descriptions.

use servo_types::SimDuration;

/// Linear-interpolation percentile of a slice of values.
///
/// `q` is a fraction in `[0, 1]`; `q = 0.5` is the median. The input does not
/// need to be sorted. Returns `0.0` for an empty slice.
///
/// # Example
///
/// ```
/// use servo_metrics::percentile;
/// let v = vec![1.0, 2.0, 3.0, 4.0];
/// assert_eq!(percentile(&v, 0.5), 2.5);
/// assert_eq!(percentile(&v, 1.0), 4.0);
/// ```
pub fn percentile(values: &[f64], q: f64) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    let mut sorted: Vec<f64> = values.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    percentile_sorted(&sorted, q)
}

/// Percentile of an already-sorted slice (ascending). See [`percentile`].
pub fn percentile_sorted(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let q = q.clamp(0.0, 1.0);
    let rank = q * (sorted.len() - 1) as f64;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    if lo == hi {
        sorted[lo]
    } else {
        let frac = rank - lo as f64;
        sorted[lo] * (1.0 - frac) + sorted[hi] * frac
    }
}

/// Summary statistics of a set of samples, in the units of the input
/// (milliseconds when built from durations).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Summary {
    /// Number of samples.
    pub count: usize,
    /// Smallest sample.
    pub min: f64,
    /// Largest sample.
    pub max: f64,
    /// Arithmetic mean.
    pub mean: f64,
    /// 5th percentile.
    pub p05: f64,
    /// First quartile.
    pub p25: f64,
    /// Median.
    pub p50: f64,
    /// Third quartile.
    pub p75: f64,
    /// 95th percentile.
    pub p95: f64,
    /// 99th percentile.
    pub p99: f64,
    /// 99.9th percentile.
    pub p999: f64,
}

impl Summary {
    /// Computes summary statistics over raw floating-point samples.
    pub fn from_values(values: &[f64]) -> Summary {
        if values.is_empty() {
            return Summary::default();
        }
        let mut sorted = values.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
        let count = sorted.len();
        let mean = sorted.iter().sum::<f64>() / count as f64;
        Summary {
            count,
            min: sorted[0],
            max: sorted[count - 1],
            mean,
            p05: percentile_sorted(&sorted, 0.05),
            p25: percentile_sorted(&sorted, 0.25),
            p50: percentile_sorted(&sorted, 0.50),
            p75: percentile_sorted(&sorted, 0.75),
            p95: percentile_sorted(&sorted, 0.95),
            p99: percentile_sorted(&sorted, 0.99),
            p999: percentile_sorted(&sorted, 0.999),
        }
    }

    /// Computes summary statistics over durations, in milliseconds.
    pub fn from_durations(durations: &[SimDuration]) -> Summary {
        let values: Vec<f64> = durations.iter().map(|d| d.as_millis_f64()).collect();
        Summary::from_values(&values)
    }

    /// The fraction of samples strictly greater than `threshold` — the
    /// quantity the paper's 5%-over-50 ms QoS rule is evaluated on.
    pub fn fraction_above(values: &[f64], threshold: f64) -> f64 {
        if values.is_empty() {
            return 0.0;
        }
        values.iter().filter(|&&v| v > threshold).count() as f64 / values.len() as f64
    }
}

/// The five-number boxplot description the paper's figures use: whiskers at
/// the 5th/95th percentiles, box at the quartiles, plus the maximum printed
/// above each box (Figure 7b).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Boxplot {
    /// Lower whisker (5th percentile).
    pub whisker_low: f64,
    /// First quartile.
    pub q1: f64,
    /// Median.
    pub median: f64,
    /// Third quartile.
    pub q3: f64,
    /// Upper whisker (95th percentile).
    pub whisker_high: f64,
    /// Maximum observed value.
    pub max: f64,
}

impl Boxplot {
    /// Builds the boxplot description of a set of samples.
    pub fn from_values(values: &[f64]) -> Boxplot {
        let s = Summary::from_values(values);
        Boxplot {
            whisker_low: s.p05,
            q1: s.p25,
            median: s.p50,
            q3: s.p75,
            whisker_high: s.p95,
            max: s.max,
        }
    }

    /// Builds the boxplot description from durations, in milliseconds.
    pub fn from_durations(durations: &[SimDuration]) -> Boxplot {
        let values: Vec<f64> = durations.iter().map(|d| d.as_millis_f64()).collect();
        Boxplot::from_values(&values)
    }

    /// Height of the box (inter-quartile range), a proxy the paper uses for
    /// performance variability.
    pub fn iqr(&self) -> f64 {
        self.q3 - self.q1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentile_edge_cases() {
        assert_eq!(percentile(&[], 0.5), 0.0);
        assert_eq!(percentile(&[7.0], 0.0), 7.0);
        assert_eq!(percentile(&[7.0], 1.0), 7.0);
        let unsorted = vec![5.0, 1.0, 3.0];
        assert_eq!(percentile(&unsorted, 0.5), 3.0);
    }

    #[test]
    fn percentile_interpolates() {
        let v: Vec<f64> = (1..=5).map(|x| x as f64).collect();
        assert_eq!(percentile(&v, 0.25), 2.0);
        assert_eq!(percentile(&v, 0.625), 3.5);
    }

    #[test]
    fn summary_of_uniform_ramp() {
        let v: Vec<f64> = (0..=100).map(|x| x as f64).collect();
        let s = Summary::from_values(&v);
        assert_eq!(s.count, 101);
        assert_eq!(s.min, 0.0);
        assert_eq!(s.max, 100.0);
        assert_eq!(s.p50, 50.0);
        assert!((s.mean - 50.0).abs() < 1e-9);
        assert_eq!(s.p95, 95.0);
    }

    #[test]
    fn summary_from_durations_uses_milliseconds() {
        let d: Vec<SimDuration> = (1..=9).map(SimDuration::from_millis).collect();
        let s = Summary::from_durations(&d);
        assert_eq!(s.p50, 5.0);
    }

    #[test]
    fn fraction_above_counts_strictly_greater() {
        let v = vec![10.0, 50.0, 60.0, 70.0];
        assert_eq!(Summary::fraction_above(&v, 50.0), 0.5);
        assert_eq!(Summary::fraction_above(&[], 50.0), 0.0);
    }

    #[test]
    fn boxplot_ordering_invariant() {
        let v: Vec<f64> = (0..1000).map(|x| (x % 97) as f64).collect();
        let b = Boxplot::from_values(&v);
        assert!(b.whisker_low <= b.q1);
        assert!(b.q1 <= b.median);
        assert!(b.median <= b.q3);
        assert!(b.q3 <= b.whisker_high);
        assert!(b.whisker_high <= b.max);
        assert!(b.iqr() >= 0.0);
    }

    #[test]
    fn empty_summary_is_default() {
        assert_eq!(Summary::from_values(&[]), Summary::default());
    }
}

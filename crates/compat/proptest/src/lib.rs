//! Offline shim for the `proptest` API subset this workspace uses.
//!
//! Provides the [`proptest!`] macro, the [`strategy::Strategy`] trait with
//! range / tuple / collection / sample strategies and `prop_map`, plus the
//! `prop_assert*` macros. Inputs are generated from a deterministic
//! per-test random stream (seeded from the test's module path, overridable
//! with `PROPTEST_SEED`); the number of cases defaults to 64 and can be
//! raised with `PROPTEST_CASES` or per-block with
//! `#![proptest_config(ProptestConfig::with_cases(n))]`.
//!
//! Shrinking is intentionally not implemented — failures report the exact
//! generated inputs via the panic message of the failing assertion.

pub mod strategy {
    //! The [`Strategy`] trait and combinators.

    use crate::test_runner::TestRng;

    /// A recipe for generating values of an output type.
    pub trait Strategy {
        /// The type of value this strategy generates.
        type Value;

        /// Draws one value from the strategy.
        fn new_value(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }
    }

    /// A strategy that always produces a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn new_value(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// The strategy returned by [`Strategy::prop_map`].
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        pub(crate) inner: S,
        pub(crate) f: F,
    }

    impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
        type Value = U;
        fn new_value(&self, rng: &mut TestRng) -> U {
            (self.f)(self.inner.new_value(rng))
        }
    }

    /// Types with a canonical full-range strategy ([`crate::arbitrary::any`]).
    pub trait Arbitrary: Sized {
        /// Draws one unconstrained value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! arbitrary_int {
        ($($ty:ty),*) => {$(
            impl Arbitrary for $ty {
                fn arbitrary(rng: &mut TestRng) -> Self {
                    rng.next_u64() as $ty
                }
            }
        )*};
    }

    arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for f64 {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.unit_f64()
        }
    }

    /// The strategy returned by [`crate::arbitrary::any`].
    #[derive(Debug, Clone, Copy)]
    pub struct Any<T> {
        pub(crate) _marker: std::marker::PhantomData<fn() -> T>,
    }

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn new_value(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// Numeric types sampleable uniformly from a half-open range.
    pub trait RangeSample: Sized {
        /// Draws a value uniformly from `[lo, hi)`.
        fn sample_between(rng: &mut TestRng, lo: Self, hi: Self) -> Self;
    }

    macro_rules! range_sample_int {
        ($($ty:ty),*) => {$(
            impl RangeSample for $ty {
                fn sample_between(rng: &mut TestRng, lo: Self, hi: Self) -> Self {
                    assert!(lo < hi, "strategy range must be non-empty");
                    let span = (hi as i128 - lo as i128) as u128;
                    let offset = (rng.next_u64() as u128) % span;
                    (lo as i128 + offset as i128) as $ty
                }
            }
        )*};
    }

    range_sample_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl RangeSample for f64 {
        fn sample_between(rng: &mut TestRng, lo: Self, hi: Self) -> Self {
            lo + rng.unit_f64() * (hi - lo)
        }
    }

    impl<T: RangeSample + Copy> Strategy for std::ops::Range<T> {
        type Value = T;
        fn new_value(&self, rng: &mut TestRng) -> T {
            T::sample_between(rng, self.start, self.end)
        }
    }

    macro_rules! tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                #[allow(non_snake_case)]
                fn new_value(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.new_value(rng),)+)
                }
            }
        };
    }

    tuple_strategy!(A, B);
    tuple_strategy!(A, B, C);
    tuple_strategy!(A, B, C, D);
    tuple_strategy!(A, B, C, D, E);
    tuple_strategy!(A, B, C, D, E, F);
    tuple_strategy!(A, B, C, D, E, F, G);

    /// Boxes a strategy, erasing its concrete type. This is how
    /// [`crate::prop_oneof!`] unifies arms built from different
    /// combinators into one arm list.
    pub fn boxed<S: Strategy + 'static>(strategy: S) -> Box<dyn Strategy<Value = S::Value>> {
        Box::new(strategy)
    }

    impl<T> Strategy for Box<dyn Strategy<Value = T>> {
        type Value = T;
        fn new_value(&self, rng: &mut TestRng) -> T {
            (**self).new_value(rng)
        }
    }

    /// A weighted union over strategies with a common value type — the
    /// engine behind [`crate::prop_oneof!`]. Selection consumes exactly one
    /// draw from the stream, then delegates to the chosen arm, so adding an
    /// arm never desynchronizes values generated by sibling strategies.
    pub struct Union<T> {
        options: Vec<(u32, Box<dyn Strategy<Value = T>>)>,
        total: u64,
    }

    impl<T> Union<T> {
        /// Builds a union from `(relative weight, strategy)` arms. At least
        /// one weight must be non-zero.
        pub fn new(options: Vec<(u32, Box<dyn Strategy<Value = T>>)>) -> Self {
            let total: u64 = options.iter().map(|(w, _)| u64::from(*w)).sum();
            assert!(total > 0, "prop_oneof! needs a non-zero total weight");
            Union { options, total }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn new_value(&self, rng: &mut TestRng) -> T {
            let mut pick = rng.next_u64() % self.total;
            for (weight, strategy) in &self.options {
                if pick < u64::from(*weight) {
                    return strategy.new_value(rng);
                }
                pick -= u64::from(*weight);
            }
            unreachable!("weights sum to the modulus")
        }
    }

    impl<T> std::fmt::Debug for Union<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.debug_struct("Union")
                .field("arms", &self.options.len())
                .finish()
        }
    }
}

pub mod arbitrary {
    //! The [`any`] entry point.

    use crate::strategy::Any;

    /// A strategy producing unconstrained values of `T`.
    pub fn any<T: crate::strategy::Arbitrary>() -> Any<T> {
        Any {
            _marker: std::marker::PhantomData,
        }
    }
}

pub mod collection {
    //! Collection strategies (`prop::collection::vec`).

    use crate::strategy::{RangeSample, Strategy};
    use crate::test_runner::TestRng;

    /// A strategy generating `Vec`s of values from `element`, with a length
    /// drawn uniformly from `size`.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: std::ops::Range<usize>,
    }

    /// Creates a [`VecStrategy`].
    pub fn vec<S: Strategy>(element: S, size: std::ops::Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn new_value(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = if self.size.start + 1 >= self.size.end {
                self.size.start
            } else {
                usize::sample_between(rng, self.size.start, self.size.end)
            };
            (0..len).map(|_| self.element.new_value(rng)).collect()
        }
    }
}

pub mod sample {
    //! Sampling strategies (`prop::sample::select`).

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// A strategy picking uniformly from a fixed set of options.
    #[derive(Debug, Clone)]
    pub struct Select<T: Clone> {
        options: Vec<T>,
    }

    /// Creates a [`Select`] over `options`.
    ///
    /// # Panics
    ///
    /// Panics if `options` is empty.
    pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
        assert!(!options.is_empty(), "select requires at least one option");
        Select { options }
    }

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;
        fn new_value(&self, rng: &mut TestRng) -> T {
            let idx = (rng.next_u64() % self.options.len() as u64) as usize;
            self.options[idx].clone()
        }
    }
}

pub mod test_runner {
    //! The per-test configuration and deterministic random stream.

    /// Configuration of a `proptest!` block.
    #[derive(Debug, Clone, Copy)]
    pub struct ProptestConfig {
        /// Number of generated cases per test.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A configuration running `cases` cases per test.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            let cases = std::env::var("PROPTEST_CASES")
                .ok()
                .and_then(|v| v.parse().ok())
                .unwrap_or(64);
            ProptestConfig { cases }
        }
    }

    /// The deterministic random stream driving input generation
    /// (SplitMix64 over a seed derived from the test name).
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Creates the stream for the named test, honouring the
        /// `PROPTEST_SEED` environment variable.
        pub fn for_test(name: &str) -> Self {
            let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                hash ^= b as u64;
                hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
            }
            let seed = std::env::var("PROPTEST_SEED")
                .ok()
                .and_then(|v| v.parse::<u64>().ok())
                .map(|s| s ^ hash)
                .unwrap_or(hash);
            TestRng { state: seed }
        }

        /// Returns the next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }

        /// Returns a uniform float in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }
}

pub mod prelude {
    //! One-stop imports, mirroring `proptest::prelude`.

    pub use crate::arbitrary::any;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};

    /// The `prop` namespace (`prop::collection`, `prop::sample`).
    pub mod prop {
        pub use crate::collection;
        pub use crate::sample;
    }
}

/// Chooses among several strategies producing a common value type, with
/// optional relative weights (`prop_oneof![3 => a, 1 => b]`; unweighted
/// arms all get weight 1), mirroring proptest's macro of the same name.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $(($weight as u32, $crate::strategy::boxed($strat))),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::prop_oneof![$(1 => $strat),+]
    };
}

/// Asserts a condition inside a property test.
#[macro_export]
macro_rules! prop_assert {
    ($($arg:tt)*) => { assert!($($arg)*) };
}

/// Asserts equality inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($arg:tt)*) => { assert_eq!($($arg)*) };
}

/// Asserts inequality inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($arg:tt)*) => { assert_ne!($($arg)*) };
}

/// Declares property tests: each `fn name(arg in strategy, ..) { body }`
/// becomes a `#[test]` that runs the body for every generated case.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!{ ($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!{
            (<$crate::test_runner::ProptestConfig as ::core::default::Default>::default())
            $($rest)*
        }
    };
}

/// Internal recursion for [`proptest!`]; not part of the public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($config:expr)) => {};
    (($config:expr)
     $(#[$meta:meta])*
     fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config: $crate::test_runner::ProptestConfig = $config;
            let mut __rng = $crate::test_runner::TestRng::for_test(
                concat!(module_path!(), "::", stringify!($name)),
            );
            for __case in 0..__config.cases {
                let _ = __case;
                $(let $arg = $crate::strategy::Strategy::new_value(&($strat), &mut __rng);)+
                $body
            }
        }
        $crate::__proptest_impl!{ ($config) $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_and_tuples(x in 0i32..10, (a, b) in (0u64..5, -3i32..3), v in prop::collection::vec(0usize..4, 1..6)) {
            prop_assert!((0..10).contains(&x));
            prop_assert!(a < 5);
            prop_assert!((-3..3).contains(&b));
            prop_assert!(!v.is_empty() && v.len() < 6);
            prop_assert!(v.iter().all(|&e| e < 4));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(7))]

        /// Doc comments and explicit configs are accepted.
        #[test]
        fn config_is_honoured(flag in any::<bool>()) {
            prop_assert!(u8::from(flag) <= 1);
        }
    }

    #[test]
    fn select_and_map() {
        let strat = prop::sample::select(vec![1, 2, 3]).prop_map(|v| v * 10);
        let mut rng = crate::test_runner::TestRng::for_test("select_and_map");
        for _ in 0..50 {
            let v = strat.new_value(&mut rng);
            assert!([10, 20, 30].contains(&v));
        }
    }

    #[test]
    fn oneof_draws_from_every_arm() {
        let strat = prop_oneof![
            3 => (0i32..10).prop_map(|n| n),
            1 => Just(42i32),
        ];
        let mut rng = crate::test_runner::TestRng::for_test("oneof");
        let (mut low, mut sentinel) = (0u32, 0u32);
        for _ in 0..400 {
            match strat.new_value(&mut rng) {
                42 => sentinel += 1,
                v if (0..10).contains(&v) => low += 1,
                v => panic!("value {v} from no arm"),
            }
        }
        // Both arms fire, and the 3:1 weighting shows (the range arm lands
        // in 0..10 which excludes 42, so the counts are unambiguous).
        assert!(
            sentinel > 0 && low > sentinel,
            "low {low} sentinel {sentinel}"
        );
    }

    proptest! {
        #[test]
        fn unweighted_oneof_works_in_proptest(v in prop_oneof![Just(1u8), Just(2u8)]) {
            prop_assert!(v == 1 || v == 2);
        }
    }

    #[test]
    fn streams_are_deterministic() {
        let mut a = crate::test_runner::TestRng::for_test("t");
        let mut b = crate::test_runner::TestRng::for_test("t");
        assert_eq!(a.next_u64(), b.next_u64());
    }
}

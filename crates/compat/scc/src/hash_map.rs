//! A minimal scc-style concurrent hash map.
//!
//! The design follows the cell-locked shape of `scc::HashMap` (a single
//! bucket array, per-entry 8-byte read-write locks, closure-based
//! accessors) reduced to the subset this workspace consumes:
//!
//! * **Lock-free lookups.** A bucket is the head of a singly linked chain
//!   of entry nodes published with compare-and-swap. Chain links and keys
//!   are immutable once a node is published, so readers traverse with
//!   plain `Acquire` loads — no bucket lock, no reader registration.
//! * **Per-entry locking.** Each node carries a [`SeqRwLock`]; value reads
//!   take its shared mode, mutations its exclusive mode. Two threads only
//!   contend when they touch the *same key*, not the same map or bucket.
//! * **Seqlock membership checks.** Presence is an atomic flag published
//!   under the entry lock; [`HashMap::contains`] reads it with the
//!   sequence-validated optimistic protocol and pays no read-modify-write
//!   at all on the (overwhelmingly common) uncontended path.
//! * **Deferred reclamation.** Removing a key drops its *value* eagerly
//!   (under the entry's exclusive lock) but leaves the node shell linked
//!   as a tombstone; re-inserting the key revives it in place. Shells are
//!   reclaimed at guaranteed quiescent points — [`HashMap::clear`] and
//!   drop, which take `&mut self` — a deliberately simplified stand-in
//!   for epoch-based reclamation: the "epoch" is the exclusive borrow, at
//!   which point no reader can hold a chain pointer. This keeps traversal
//!   free of use-after-free hazards without hazard pointers or a garbage
//!   epoch list.
//! * **No resizing.** The bucket array is sized at construction and
//!   chains absorb overflow gracefully. The worlds built on this map
//!   shard first and know their per-shard populations, so incremental
//!   rehashing (which the real scc implements with epoch-protected array
//!   swaps) is out of scope for the subset.

use std::cell::UnsafeCell;
use std::collections::hash_map::RandomState;
use std::fmt;
use std::hash::{BuildHasher, Hash};
use std::sync::atomic::{AtomicBool, AtomicPtr, AtomicUsize, Ordering};

use crate::seqlock::SeqRwLock;

/// One chain node. `key` and `next` are immutable once the node is
/// published to its bucket; `value` and `present` change only under
/// `lock`'s exclusive mode.
struct Node<K, V> {
    key: K,
    lock: SeqRwLock,
    /// Whether the node currently holds a value (false = tombstone).
    /// Published under the entry lock; readable lock-free via the seqlock
    /// protocol.
    present: AtomicBool,
    value: UnsafeCell<Option<V>>,
    next: AtomicPtr<Node<K, V>>,
}

impl<K, V> Node<K, V> {
    fn new(key: K, value: V) -> Box<Self> {
        Box::new(Node {
            key,
            lock: SeqRwLock::new(),
            present: AtomicBool::new(true),
            value: UnsafeCell::new(Some(value)),
            next: AtomicPtr::new(std::ptr::null_mut()),
        })
    }
}

/// A scalable concurrent hash map with per-entry locking.
///
/// See the [module docs](self) for the design and the implemented subset.
///
/// # Example
///
/// ```
/// let map: scc::HashMap<u32, String> = scc::HashMap::default();
/// assert!(map.insert(1, "one".to_string()).is_ok());
/// assert_eq!(map.read(&1, |_, v| v.clone()), Some("one".to_string()));
/// map.update(&1, |_, v| v.push('!'));
/// assert_eq!(map.remove(&1).map(|(_, v)| v), Some("one!".to_string()));
/// assert!(map.is_empty());
/// ```
pub struct HashMap<K, V, H = RandomState> {
    buckets: Box<[AtomicPtr<Node<K, V>>]>,
    len: AtomicUsize,
    build_hasher: H,
}

// Values may be read (`&V`) from many threads and dropped on any thread;
// keys are shared immutably. The `UnsafeCell` is protected by the
// per-entry lock discipline above.
unsafe impl<K: Send + Sync, V: Send + Sync, H: Send> Send for HashMap<K, V, H> {}
unsafe impl<K: Send + Sync, V: Send + Sync, H: Sync> Sync for HashMap<K, V, H> {}

/// Default bucket-array size (entries beyond this chain).
const DEFAULT_CAPACITY: usize = 64;

impl<K: Eq + Hash, V, H: BuildHasher + Default> Default for HashMap<K, V, H> {
    fn default() -> Self {
        Self::with_capacity_and_hasher(DEFAULT_CAPACITY, H::default())
    }
}

impl<K: Eq + Hash, V> HashMap<K, V, RandomState> {
    /// Creates an empty map with the default capacity.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty map with at least `capacity` buckets.
    pub fn with_capacity(capacity: usize) -> Self {
        Self::with_capacity_and_hasher(capacity, RandomState::new())
    }
}

impl<K: Eq + Hash, V, H: BuildHasher> HashMap<K, V, H> {
    /// Creates an empty map with at least `capacity` buckets and the given
    /// hasher factory.
    pub fn with_capacity_and_hasher(capacity: usize, build_hasher: H) -> Self {
        let buckets = capacity.clamp(1, 1 << 26).next_power_of_two();
        HashMap {
            buckets: (0..buckets)
                .map(|_| AtomicPtr::new(std::ptr::null_mut()))
                .collect(),
            len: AtomicUsize::new(0),
            build_hasher,
        }
    }

    /// Number of key-value pairs currently stored.
    pub fn len(&self) -> usize {
        self.len.load(Ordering::Acquire)
    }

    /// Whether the map holds no pairs.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of buckets (fixed at construction).
    pub fn bucket_count(&self) -> usize {
        self.buckets.len()
    }

    #[inline]
    fn bucket_of(&self, key: &K) -> &AtomicPtr<Node<K, V>> {
        let bits = self.buckets.len().trailing_zeros();
        if bits == 0 {
            return &self.buckets[0];
        }
        let hash = self.build_hasher.hash_one(key);
        // Top bits: multiply-based hashers accumulate entropy high.
        let index = (hash >> (64 - bits)) as usize;
        &self.buckets[index & (self.buckets.len() - 1)]
    }

    /// Finds the node for `key`, live or tombstoned. Nodes are only freed
    /// under `&mut self`, so the shared borrow keeps the reference valid.
    #[inline]
    fn find(&self, key: &K) -> Option<&Node<K, V>> {
        let mut cur = self.bucket_of(key).load(Ordering::Acquire);
        while !cur.is_null() {
            let node = unsafe { &*cur };
            if node.key == *key {
                return Some(node);
            }
            cur = node.next.load(Ordering::Acquire);
        }
        None
    }

    /// Scans `[from, until)` of a chain for `key`. The boundary is exact
    /// because links are immutable after publication: `until` (a previous
    /// head) stays reachable from any newer head.
    fn find_range<'a>(
        &'a self,
        from: *mut Node<K, V>,
        until: *mut Node<K, V>,
        key: &K,
    ) -> Option<&'a Node<K, V>> {
        let mut cur = from;
        while !cur.is_null() && cur != until {
            let node = unsafe { &*cur };
            if node.key == *key {
                return Some(node);
            }
            cur = node.next.load(Ordering::Acquire);
        }
        None
    }

    /// Revives or fills `node` with `value` if it is a tombstone. Returns
    /// the value back if the node is live.
    fn fill_node(&self, node: &Node<K, V>, value: V) -> Result<(), V> {
        let _guard = node.lock.write();
        if node.present.load(Ordering::Relaxed) {
            return Err(value);
        }
        unsafe { *node.value.get() = Some(value) };
        node.present.store(true, Ordering::Release);
        self.len.fetch_add(1, Ordering::AcqRel);
        Ok(())
    }

    /// Swaps `value` into `node`, returning the previous value (tombstones
    /// revive and return `None`).
    fn swap_node(&self, node: &Node<K, V>, value: V) -> Option<V> {
        let _guard = node.lock.write();
        let previous = unsafe { (*node.value.get()).replace(value) };
        if previous.is_none() {
            node.present.store(true, Ordering::Release);
            self.len.fetch_add(1, Ordering::AcqRel);
        }
        previous
    }

    /// Publishes a brand-new node for a key *not currently in the chain*,
    /// or hands back the racing node if another thread published the key
    /// first. `scanned` is the chain head already checked for duplicates.
    fn publish(
        &self,
        key: K,
        value: V,
        mut scanned: *mut Node<K, V>,
    ) -> Result<(), (K, V, *const Node<K, V>)> {
        let bucket = self.bucket_of(&key);
        let node = Node::new(key, value);
        let raw = Box::into_raw(node);
        loop {
            let head = bucket.load(Ordering::Acquire);
            // A racing insert may have prepended our key since we scanned.
            let key_ref = unsafe { &(*raw).key };
            if let Some(existing) = self.find_range(head, scanned, key_ref) {
                let existing: *const Node<K, V> = existing;
                // Reclaim our unpublished node; nobody else can see it.
                let node = unsafe { Box::from_raw(raw) };
                let key = node.key;
                let value = node
                    .value
                    .into_inner()
                    .expect("unpublished node keeps value");
                return Err((key, value, existing));
            }
            unsafe { (*raw).next.store(head, Ordering::Relaxed) };
            if bucket
                .compare_exchange(head, raw, Ordering::Release, Ordering::Acquire)
                .is_ok()
            {
                self.len.fetch_add(1, Ordering::AcqRel);
                return Ok(());
            }
            scanned = head;
        }
    }

    /// Inserts `key -> value`; fails with both back if the key is live.
    ///
    /// # Errors
    ///
    /// Returns `Err((key, value))` if the key is already present.
    pub fn insert(&self, key: K, value: V) -> Result<(), (K, V)> {
        if let Some(node) = self.find(&key) {
            return self.fill_node(node, value).map_err(|value| (key, value));
        }
        match self.publish(key, value, std::ptr::null_mut()) {
            Ok(()) => Ok(()),
            Err((key, value, existing)) => {
                let existing = unsafe { &*existing };
                self.fill_node(existing, value)
                    .map_err(|value| (key, value))
            }
        }
    }

    /// Inserts or replaces `key -> value`, returning the replaced value.
    pub fn upsert(&self, key: K, value: V) -> Option<V> {
        if let Some(node) = self.find(&key) {
            return self.swap_node(node, value);
        }
        match self.publish(key, value, std::ptr::null_mut()) {
            Ok(()) => None,
            Err((_, value, existing)) => {
                let existing = unsafe { &*existing };
                self.swap_node(existing, value)
            }
        }
    }

    /// Runs `f` with shared access to the value for `key`.
    pub fn read<R>(&self, key: &K, f: impl FnOnce(&K, &V) -> R) -> Option<R> {
        let node = self.find(key)?;
        let _guard = node.lock.read();
        let value = unsafe { (*node.value.get()).as_ref() }?;
        Some(f(&node.key, value))
    }

    /// Runs `f` with exclusive access to the value for `key`.
    pub fn update<R>(&self, key: &K, f: impl FnOnce(&K, &mut V) -> R) -> Option<R> {
        let node = self.find(key)?;
        let _guard = node.lock.write();
        let value = unsafe { (*node.value.get()).as_mut() }?;
        Some(f(&node.key, value))
    }

    /// Whether `key` is present. Lock-free: membership is an atomic flag
    /// validated with the entry's sequence counter, so the common path
    /// performs no read-modify-write at all.
    pub fn contains(&self, key: &K) -> bool {
        let Some(node) = self.find(key) else {
            return false;
        };
        if let Some(seq) = node.lock.optimistic_seq() {
            let present = node.present.load(Ordering::Acquire);
            if node.lock.validate(seq) {
                return present;
            }
        }
        // A writer overlapped: fall back to a shared acquisition.
        let _guard = node.lock.read();
        node.present.load(Ordering::Acquire)
    }

    /// Removes `key`, returning the pair if it was live. The node shell
    /// stays chained as a tombstone (see the module docs on reclamation).
    pub fn remove(&self, key: &K) -> Option<(K, V)>
    where
        K: Clone,
    {
        let node = self.find(key)?;
        let _guard = node.lock.write();
        let value = unsafe { (*node.value.get()).take() }?;
        node.present.store(false, Ordering::Release);
        self.len.fetch_sub(1, Ordering::AcqRel);
        Some((node.key.clone(), value))
    }

    /// Visits every live pair with shared access. Iteration is weakly
    /// consistent: concurrent inserts/removes may or may not be observed,
    /// but every pair visited is read under its entry lock.
    pub fn scan(&self, mut f: impl FnMut(&K, &V)) {
        for bucket in self.buckets.iter() {
            let mut cur = bucket.load(Ordering::Acquire);
            while !cur.is_null() {
                let node = unsafe { &*cur };
                {
                    let _guard = node.lock.read();
                    if let Some(value) = unsafe { (*node.value.get()).as_ref() } {
                        f(&node.key, value);
                    }
                }
                cur = node.next.load(Ordering::Acquire);
            }
        }
    }

    /// Visits every live pair with exclusive access, removing those for
    /// which `f` returns false. Returns `(retained, removed)` counts.
    pub fn retain(&self, mut f: impl FnMut(&K, &mut V) -> bool) -> (usize, usize) {
        let (mut retained, mut removed) = (0, 0);
        for bucket in self.buckets.iter() {
            let mut cur = bucket.load(Ordering::Acquire);
            while !cur.is_null() {
                let node = unsafe { &*cur };
                {
                    let _guard = node.lock.write();
                    let slot = unsafe { &mut *node.value.get() };
                    if let Some(value) = slot.as_mut() {
                        if f(&node.key, value) {
                            retained += 1;
                        } else {
                            *slot = None;
                            node.present.store(false, Ordering::Release);
                            self.len.fetch_sub(1, Ordering::AcqRel);
                            removed += 1;
                        }
                    }
                }
                cur = node.next.load(Ordering::Acquire);
            }
        }
        (retained, removed)
    }

    /// Drops every pair and reclaims all node shells (tombstones
    /// included). Takes `&mut self`: the exclusive borrow is the quiescent
    /// point at which no concurrent reader can hold a chain pointer.
    pub fn clear(&mut self) {
        for bucket in self.buckets.iter() {
            let mut cur = bucket.swap(std::ptr::null_mut(), Ordering::Relaxed);
            while !cur.is_null() {
                let node = unsafe { Box::from_raw(cur) };
                cur = node.next.load(Ordering::Relaxed);
            }
        }
        self.len.store(0, Ordering::Release);
    }
}

impl<K, V, H> Drop for HashMap<K, V, H> {
    fn drop(&mut self) {
        for bucket in self.buckets.iter() {
            let mut cur = bucket.load(Ordering::Relaxed);
            while !cur.is_null() {
                let node = unsafe { Box::from_raw(cur) };
                cur = node.next.load(Ordering::Relaxed);
            }
        }
    }
}

impl<K, V, H> fmt::Debug for HashMap<K, V, H> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("HashMap")
            .field("len", &self.len.load(Ordering::Relaxed))
            .field("buckets", &self.buckets.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_read_update_remove() {
        let map: HashMap<u64, u64> = HashMap::new();
        assert!(map.insert(7, 70).is_ok());
        assert_eq!(map.insert(7, 71), Err((7, 71)));
        assert_eq!(map.read(&7, |_, v| *v), Some(70));
        assert_eq!(map.update(&7, |_, v| *v += 1), Some(()));
        assert_eq!(map.read(&7, |_, v| *v), Some(71));
        assert!(map.contains(&7));
        assert!(!map.contains(&8));
        assert_eq!(map.len(), 1);
        assert_eq!(map.remove(&7), Some((7, 71)));
        assert_eq!(map.remove(&7), None);
        assert!(map.is_empty());
        assert_eq!(map.read(&7, |_, v| *v), None);
    }

    #[test]
    fn tombstones_revive_in_place() {
        let map: HashMap<u64, String> = HashMap::with_capacity(4);
        assert!(map.insert(1, "a".into()).is_ok());
        assert_eq!(map.remove(&1).map(|(_, v)| v), Some("a".into()));
        assert!(!map.contains(&1));
        // Reinsert revives the tombstone rather than chaining a duplicate.
        assert!(map.insert(1, "b".into()).is_ok());
        assert!(map.contains(&1));
        assert_eq!(map.read(&1, |_, v| v.clone()), Some("b".into()));
        assert_eq!(map.len(), 1);
    }

    #[test]
    fn upsert_replaces_and_reports() {
        let map: HashMap<u32, u32> = HashMap::new();
        assert_eq!(map.upsert(3, 30), None);
        assert_eq!(map.upsert(3, 31), Some(30));
        assert_eq!(map.read(&3, |_, v| *v), Some(31));
        map.remove(&3);
        assert_eq!(map.upsert(3, 32), None);
        assert_eq!(map.len(), 1);
    }

    #[test]
    fn chains_handle_bucket_collisions() {
        // One bucket: every key collides and the chain carries them all.
        let map: HashMap<u64, u64> = HashMap::with_capacity(1);
        for k in 0..100 {
            assert!(map.insert(k, k * 10).is_ok());
        }
        assert_eq!(map.len(), 100);
        assert_eq!(map.bucket_count(), 1);
        for k in 0..100 {
            assert_eq!(map.read(&k, |_, v| *v), Some(k * 10));
        }
        let mut sum = 0;
        map.scan(|_, v| sum += v);
        assert_eq!(sum, (0..100).map(|k| k * 10).sum::<u64>());
    }

    #[test]
    fn retain_splits_live_set() {
        let map: HashMap<u64, u64> = HashMap::with_capacity(16);
        for k in 0..50 {
            map.insert(k, k).unwrap();
        }
        let (retained, removed) = map.retain(|k, _| k % 2 == 0);
        assert_eq!((retained, removed), (25, 25));
        assert_eq!(map.len(), 25);
        assert!(map.contains(&2));
        assert!(!map.contains(&3));
    }

    #[test]
    fn clear_reclaims_everything() {
        let mut map: HashMap<u64, Vec<u8>> = HashMap::with_capacity(8);
        for k in 0..32 {
            map.insert(k, vec![0u8; 128]).unwrap();
        }
        map.remove(&0);
        map.clear();
        assert!(map.is_empty());
        assert!(!map.contains(&1));
        // The map is fully usable after a clear.
        assert!(map.insert(5, vec![1]).is_ok());
        assert_eq!(map.len(), 1);
    }

    #[test]
    fn concurrent_distinct_keys_are_independent() {
        let map: HashMap<u64, u64> = HashMap::with_capacity(8);
        std::thread::scope(|scope| {
            for t in 0..4u64 {
                let map = &map;
                scope.spawn(move || {
                    for i in 0..200 {
                        let key = t * 1000 + i;
                        map.insert(key, key).unwrap();
                        assert_eq!(map.read(&key, |_, v| *v), Some(key));
                        if i % 3 == 0 {
                            map.remove(&key);
                        }
                    }
                });
            }
        });
        let mut count = 0;
        map.scan(|k, v| {
            assert_eq!(k, v);
            count += 1;
        });
        assert_eq!(count, map.len());
    }

    #[test]
    fn concurrent_same_key_updates_serialize() {
        let map: HashMap<u32, u64> = HashMap::new();
        map.insert(0, 0).unwrap();
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let map = &map;
                scope.spawn(move || {
                    for _ in 0..500 {
                        map.update(&0, |_, v| *v += 1).unwrap();
                    }
                });
            }
        });
        assert_eq!(map.read(&0, |_, v| *v), Some(2000));
    }

    /// The CI concurrency-smoke entry point: a mixed
    /// insert/read/update/remove/scan storm over a small hot key set, with
    /// the round count scaled by `SCC_SMOKE_SCALE` (default 1 — cheap
    /// enough for every `cargo test`; the dedicated CI job raises it, and
    /// the same test runs under miri when the component is available).
    /// After each round the map must be exactly self-consistent: `len`
    /// matches what `scan` visits, and every surviving value carries the
    /// writer-invariant (values only ever hold their key or increments of
    /// it, so `value >= key` always).
    #[test]
    fn smoke_mixed_operation_storm() {
        let scale: u64 = std::env::var("SCC_SMOKE_SCALE")
            .ok()
            .and_then(|v| v.parse().ok())
            .filter(|v| *v > 0)
            .unwrap_or(1);
        const KEYS: u64 = 64;
        for round in 0..scale {
            let map: HashMap<u64, u64> = HashMap::with_capacity(16);
            std::thread::scope(|scope| {
                for t in 0..8u64 {
                    let map = &map;
                    scope.spawn(move || {
                        let mut state = round ^ (t << 32) ^ 0x9e37_79b9;
                        for i in 0..2_000u64 {
                            // splitmix-style op/key selector: deterministic
                            // per (round, thread), varied across both.
                            state = state
                                .wrapping_mul(0x5851_f42d_4c95_7f2d)
                                .wrapping_add(0x1405_7b7e_f767_814f);
                            let key = (state >> 17) % KEYS;
                            match state % 7 {
                                0 | 1 => {
                                    let _ = map.insert(key, key);
                                }
                                2 => {
                                    map.upsert(key, key);
                                }
                                3 => {
                                    if let Some(v) = map.read(&key, |k, v| {
                                        assert_eq!(*k, key);
                                        *v
                                    }) {
                                        assert!(v >= key, "value {v} under key {key}");
                                    }
                                }
                                4 => {
                                    map.update(&key, |_, v| *v += KEYS);
                                }
                                5 => {
                                    map.remove(&key);
                                }
                                _ => {
                                    if i % 64 == 0 {
                                        map.scan(|k, v| assert!(*v >= *k));
                                    } else {
                                        // Racy by nature; only the call path
                                        // is being exercised here.
                                        let _ = map.contains(&key);
                                    }
                                }
                            }
                        }
                    });
                }
            });
            let mut visited = 0usize;
            map.scan(|k, v| {
                assert!(*v >= *k && (*v - *k) % KEYS == 0, "key {k} value {v}");
                visited += 1;
            });
            assert_eq!(visited, map.len(), "round {round}");
        }
    }

    #[test]
    fn racing_inserts_of_one_key_keep_exactly_one() {
        for _ in 0..20 {
            let map: HashMap<u32, usize> = HashMap::with_capacity(1);
            let winners = AtomicUsize::new(0);
            std::thread::scope(|scope| {
                for t in 0..4 {
                    let (map, winners) = (&map, &winners);
                    scope.spawn(move || {
                        if map.insert(42, t).is_ok() {
                            winners.fetch_add(1, Ordering::Relaxed);
                        }
                    });
                }
            });
            assert_eq!(winners.load(Ordering::Relaxed), 1);
            assert_eq!(map.len(), 1);
            assert!(map.contains(&42));
        }
    }
}

//! The per-entry synchronization primitive: an 8-byte read-write lock with
//! a sequence counter for optimistic, lock-free metadata validation.
//!
//! This is the "customized 8-byte read-write mutex" shape of scc's cell
//! locks, reduced to the subset this workspace needs:
//!
//! * **Shared / exclusive locking** over one `AtomicU32` word (bit 31 is
//!   the writer claim, the low 31 bits count readers). Readers only enter
//!   via compare-and-swap while the writer bit is clear, so a waiting
//!   writer never observes phantom reader registrations.
//! * **A seqlock protocol** over a second `AtomicU32`: the sequence is
//!   bumped to *odd* when a writer claims the lock and back to *even* when
//!   it releases. A reader of atomic metadata (for example a presence
//!   flag) can load the sequence, read the metadata, and re-validate the
//!   sequence — if it is unchanged and even, no writer overlapped the read
//!   and no lock traffic (no read-modify-write) was paid. Non-atomic
//!   payloads must NOT use this path: optimistically reading them while a
//!   writer mutates would be a data race, so full-value reads always take
//!   the shared mode.
//! * **No spinning convoy on oversubscribed hosts**: waiters spin briefly
//!   and then `yield_now`, which matters when more threads than cores
//!   contend (a preempted writer must be given the CPU to finish).

use std::sync::atomic::{AtomicU32, Ordering};

/// Writer claim bit in the state word.
const WRITER: u32 = 1 << 31;

/// Brief exponential-ish backoff: spin a few times, then yield the CPU so
/// a preempted lock holder can run (essential when threads > cores).
#[inline]
fn backoff(spins: &mut u32) {
    *spins = spins.saturating_add(1);
    if *spins < 16 {
        std::hint::spin_loop();
    } else {
        std::thread::yield_now();
    }
}

/// An 8-byte read-write spin lock with a sequence counter.
#[derive(Debug, Default)]
pub struct SeqRwLock {
    /// Bit 31: writer claimed. Bits 0..31: active reader count.
    state: AtomicU32,
    /// Seqlock generation: odd while a writer holds the lock.
    seq: AtomicU32,
}

impl SeqRwLock {
    /// Creates an unlocked lock.
    pub const fn new() -> Self {
        SeqRwLock {
            state: AtomicU32::new(0),
            seq: AtomicU32::new(0),
        }
    }

    /// Acquires the lock in shared mode.
    pub fn read(&self) -> ReadGuard<'_> {
        let mut spins = 0;
        loop {
            let s = self.state.load(Ordering::Relaxed);
            if s & WRITER == 0
                && self
                    .state
                    .compare_exchange_weak(s, s + 1, Ordering::Acquire, Ordering::Relaxed)
                    .is_ok()
            {
                return ReadGuard { lock: self };
            }
            backoff(&mut spins);
        }
    }

    /// Acquires the lock in exclusive mode.
    pub fn write(&self) -> WriteGuard<'_> {
        // Claim the writer bit; new readers are turned away from here on.
        let mut spins = 0;
        loop {
            let s = self.state.load(Ordering::Relaxed);
            if s & WRITER == 0
                && self
                    .state
                    .compare_exchange_weak(s, s | WRITER, Ordering::Acquire, Ordering::Relaxed)
                    .is_ok()
            {
                break;
            }
            backoff(&mut spins);
        }
        // Flip the sequence odd *before* draining readers: an optimistic
        // metadata read overlapping this write will fail validation.
        self.seq.fetch_add(1, Ordering::Release);
        // Wait out the readers that entered before the claim.
        let mut spins = 0;
        while self.state.load(Ordering::Acquire) != WRITER {
            backoff(&mut spins);
        }
        WriteGuard { lock: self }
    }

    /// Starts an optimistic read: returns the current sequence if no writer
    /// is active, or `None` if one is (callers should fall back to
    /// [`SeqRwLock::read`]).
    #[inline]
    pub fn optimistic_seq(&self) -> Option<u32> {
        let seq = self.seq.load(Ordering::Acquire);
        (seq & 1 == 0).then_some(seq)
    }

    /// Validates an optimistic read started at `seq`: true iff no writer
    /// overlapped the section.
    #[inline]
    pub fn validate(&self, seq: u32) -> bool {
        self.seq.load(Ordering::Acquire) == seq
    }

    /// Whether a writer currently holds the lock (diagnostic only).
    pub fn write_locked(&self) -> bool {
        self.state.load(Ordering::Relaxed) & WRITER != 0
    }
}

/// RAII shared-mode guard; releases on drop (including unwind).
#[derive(Debug)]
pub struct ReadGuard<'a> {
    lock: &'a SeqRwLock,
}

impl Drop for ReadGuard<'_> {
    fn drop(&mut self) {
        self.lock.state.fetch_sub(1, Ordering::Release);
    }
}

/// RAII exclusive-mode guard; releases (and bumps the sequence back to
/// even) on drop, including unwind.
#[derive(Debug)]
pub struct WriteGuard<'a> {
    lock: &'a SeqRwLock,
}

impl Drop for WriteGuard<'_> {
    fn drop(&mut self) {
        self.lock.seq.fetch_add(1, Ordering::Release);
        self.lock.state.fetch_and(!WRITER, Ordering::Release);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn exclusive_excludes_shared() {
        let lock = SeqRwLock::new();
        let counter = AtomicU64::new(0);
        std::thread::scope(|scope| {
            for _ in 0..4 {
                scope.spawn(|| {
                    for _ in 0..1000 {
                        let _g = lock.write();
                        // Non-atomic-looking increment under the lock: load,
                        // bump, store. Races would lose updates.
                        let v = counter.load(Ordering::Relaxed);
                        counter.store(v + 1, Ordering::Relaxed);
                    }
                });
            }
        });
        assert_eq!(counter.load(Ordering::Relaxed), 4000);
    }

    #[test]
    fn readers_share() {
        let lock = SeqRwLock::new();
        let g1 = lock.read();
        let g2 = lock.read();
        drop(g1);
        drop(g2);
        let _w = lock.write();
        assert!(lock.write_locked());
    }

    #[test]
    fn optimistic_read_detects_writers() {
        let lock = SeqRwLock::new();
        let seq = lock.optimistic_seq().expect("unlocked");
        assert!(lock.validate(seq));
        {
            let _w = lock.write();
            // While the writer holds the lock the sequence is odd.
            assert!(lock.optimistic_seq().is_none());
            assert!(!lock.validate(seq));
        }
        // After the write completes the old sequence stays invalid.
        assert!(!lock.validate(seq));
        assert!(lock.optimistic_seq().is_some());
    }

    #[test]
    fn sequence_advances_by_two_per_write() {
        let lock = SeqRwLock::new();
        let before = lock.optimistic_seq().unwrap();
        drop(lock.write());
        drop(lock.write());
        let after = lock.optimistic_seq().unwrap();
        assert_eq!(after.wrapping_sub(before), 4);
    }
}

//! Offline shim for the `scc` (scalable concurrent containers) API subset
//! this workspace uses.
//!
//! The build environment has no crates.io access, so this crate implements
//! the piece of `scc` the world tier consumes — a concurrent
//! [`HashMap`] with closure-based accessors — in the same cell-locked
//! design family as the real crate: lock-free chain traversal for lookups,
//! a per-entry 8-byte read-write lock ([`SeqRwLock`]) for value access,
//! sequence-validated optimistic membership checks, and reclamation
//! deferred to quiescent (`&mut`) points instead of a full epoch manager.
//! See the [`hash_map`] module docs for the exact guarantees and the
//! simplifications relative to upstream.

#![warn(missing_docs)]

pub mod hash_map;
pub mod seqlock;

pub use hash_map::HashMap;
pub use seqlock::SeqRwLock;

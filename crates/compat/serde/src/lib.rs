//! Offline shim for the `serde` facade.
//!
//! The real `serde` is unavailable in this build environment (no network
//! access), and the workspace only uses its derives as forward-compatible
//! markers on plain-old-data types — all actual serialization in the Servo
//! stack goes through hand-rolled byte codecs (`Chunk::to_bytes`,
//! `PlayerRecord::to_bytes`). This shim provides the two marker traits and
//! re-exports no-op derive macros so the `#[derive(Serialize, Deserialize)]`
//! annotations keep compiling unchanged.

/// Marker trait standing in for `serde::Serialize`.
pub trait Serialize {}

/// Marker trait standing in for `serde::Deserialize`.
pub trait Deserialize<'de>: Sized {}

pub use serde_derive::{Deserialize, Serialize};

//! No-op `Serialize` / `Deserialize` derives for the offline serde shim.
//!
//! The macros scan the item's token stream for the type name following the
//! `struct` or `enum` keyword and emit an empty marker-trait impl. Generic
//! type parameters are carried through unconstrained, which is sufficient
//! for the plain-old-data types this workspace derives on.

use proc_macro::{TokenStream, TokenTree};

/// Extracts the type name and (raw) generic parameter list, e.g.
/// `("Foo", Some("<T, U>"))` for `struct Foo<T, U> { .. }`.
fn type_header(input: TokenStream) -> (String, String) {
    let mut tokens = input.into_iter().peekable();
    for token in tokens.by_ref() {
        if let TokenTree::Ident(ident) = &token {
            let kw = ident.to_string();
            if kw == "struct" || kw == "enum" {
                break;
            }
        }
    }
    let name = match tokens.next() {
        Some(TokenTree::Ident(ident)) => ident.to_string(),
        other => panic!("derive target has no type name: {other:?}"),
    };
    // Collect a `<...>` generics group if present (token-by-token, since
    // proc_macro has no grouping for angle brackets).
    let mut generics = String::new();
    if matches!(tokens.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        let mut depth = 0i32;
        for token in tokens.by_ref() {
            match &token {
                TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
                _ => {}
            }
            generics.push_str(&token.to_string());
            generics.push(' ');
            if depth == 0 {
                break;
            }
        }
    }
    (name, generics)
}

/// Strips default assignments (`= expr`) and bounds from a generics list so
/// it can be reused as type arguments: `<T: Clone, const N: usize>` becomes
/// `<T, N>`. Good enough for the simple generics this workspace uses.
fn generic_args(generics: &str) -> String {
    if generics.is_empty() {
        return String::new();
    }
    let inner = generics
        .trim()
        .trim_start_matches('<')
        .trim_end_matches('>');
    let mut args = Vec::new();
    let mut depth = 0i32;
    let mut current = String::new();
    for ch in inner.chars() {
        match ch {
            '<' | '(' | '[' => depth += 1,
            '>' | ')' | ']' => depth -= 1,
            ',' if depth == 0 => {
                args.push(current.clone());
                current.clear();
                continue;
            }
            _ => {}
        }
        current.push(ch);
    }
    if !current.trim().is_empty() {
        args.push(current);
    }
    let names: Vec<String> = args
        .iter()
        .map(|a| {
            let head = a.split([':', '=']).next().unwrap_or("").trim();
            head.trim_start_matches("const ")
                .split_whitespace()
                .last()
                .unwrap_or("")
                .to_string()
        })
        .collect();
    format!("<{}>", names.join(", "))
}

/// Derives an empty `serde::Serialize` marker impl.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let (name, generics) = type_header(input);
    let args = generic_args(&generics);
    format!("impl{generics} ::serde::Serialize for {name}{args} {{}}")
        .parse()
        .expect("generated Serialize impl must parse")
}

/// Derives an empty `serde::Deserialize` marker impl.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let (name, generics) = type_header(input);
    let args = generic_args(&generics);
    let params = if generics.is_empty() {
        "<'de>".to_string()
    } else {
        format!("<'de, {}", generics.trim().trim_start_matches('<'))
    };
    format!("impl{params} ::serde::Deserialize<'de> for {name}{args} {{}}")
        .parse()
        .expect("generated Deserialize impl must parse")
}

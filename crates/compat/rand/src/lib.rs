//! Offline shim for the `rand` API subset this workspace uses.
//!
//! The real `rand` crate is unavailable in this build environment, so this
//! shim provides compatible `RngCore` / `Rng` / `SeedableRng` traits and a
//! `rngs::StdRng` built on the xoshiro256++ generator (seeded through
//! SplitMix64, the same construction `rand_xoshiro` uses). Determinism is
//! what the simulation cares about — every experiment seeds its own
//! generator — so a different underlying stream than upstream `StdRng` is
//! fine as long as it is stable across runs.

use std::fmt;

/// Error type produced by fallible RNG operations. The shim's generators
/// are infallible; the type exists for API compatibility.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Error;

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "rng error")
    }
}

impl std::error::Error for Error {}

/// The core trait every random-number generator implements.
pub trait RngCore {
    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
    /// Fallible variant of [`RngCore::fill_bytes`]; never fails here.
    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), Error> {
        self.fill_bytes(dest);
        Ok(())
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), Error> {
        (**self).try_fill_bytes(dest)
    }
}

/// Types that can be sampled uniformly from an RNG's raw bit stream — the
/// shim's stand-in for sampling from `rand`'s `Standard` distribution.
pub trait StandardSample {
    /// Draws one uniformly distributed value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! standard_int {
    ($($ty:ty),*) => {$(
        impl StandardSample for $ty {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $ty
            }
        }
    )*};
}

standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl StandardSample for u128 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128
    }
}

impl StandardSample for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl StandardSample for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits scaled into [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Convenience methods layered on any [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a uniformly distributed value of type `T`.
    fn gen<T: StandardSample>(&mut self) -> T {
        T::sample(self)
    }

    /// Returns `true` with probability `p` (clamped to `[0, 1]`).
    fn gen_bool(&mut self, p: f64) -> bool {
        f64::sample(self) < p
    }

    /// Draws a value uniformly from `range` (`lo..hi` or `lo..=hi`).
    fn gen_range<T: UniformSample, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample_from(self)
    }
}

/// Range forms accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws a value uniformly from this range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: UniformSample> SampleRange<T> for std::ops::Range<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_range(rng, self.start, self.end)
    }
}

impl<T: UniformSample + InclusiveUpperBound> SampleRange<T> for std::ops::RangeInclusive<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = self.into_inner();
        T::sample_range(rng, lo, hi.one_above())
    }
}

/// Integer types whose inclusive upper bound can be shifted to exclusive.
pub trait InclusiveUpperBound: Sized {
    /// `self + 1`, used to convert `..=hi` into `..hi + 1`.
    fn one_above(self) -> Self;
}

macro_rules! inclusive_upper {
    ($($ty:ty),*) => {$(
        impl InclusiveUpperBound for $ty {
            fn one_above(self) -> Self {
                self.checked_add(1).expect("gen_range(..=MAX) is unsupported by the shim")
            }
        }
    )*};
}

inclusive_upper!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl<R: RngCore + ?Sized> Rng for R {}

/// Types that support uniform sampling from a half-open range.
pub trait UniformSample: Sized {
    /// Draws a value uniformly from `[lo, hi)`.
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
}

macro_rules! uniform_int {
    ($($ty:ty),*) => {$(
        impl UniformSample for $ty {
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo < hi, "gen_range requires a non-empty range");
                let span = (hi as i128 - lo as i128) as u128;
                let offset = (rng.next_u64() as u128) % span;
                (lo as i128 + offset as i128) as $ty
            }
        }
    )*};
}

uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl UniformSample for f64 {
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
        lo + f64::sample(rng) * (hi - lo)
    }
}

/// Generators that can be constructed from a seed.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Namespace module mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// A deterministic xoshiro256++ generator standing in for `StdRng`.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // Expand the 64-bit seed into the full 256-bit state with
            // SplitMix64, as recommended by the xoshiro authors.
            let mut state = seed;
            let s = [
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
            ];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            // xoshiro256++ step.
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..32 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn unit_floats_are_in_range() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let f: f64 = rng.gen();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..10_000 {
            let v = rng.gen_range(-5i32..17);
            assert!((-5..17).contains(&v));
            let u = rng.gen_range(3usize..4);
            assert_eq!(u, 3);
        }
    }

    #[test]
    fn fill_bytes_covers_partial_chunks() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut buf = [0u8; 13];
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
        assert!(rng.try_fill_bytes(&mut buf).is_ok());
    }

    #[test]
    fn dyn_rng_core_supports_gen() {
        let mut rng = StdRng::seed_from_u64(4);
        let dyn_rng: &mut dyn RngCore = &mut rng;
        let x: f64 = dyn_rng.gen();
        assert!((0.0..1.0).contains(&x));
    }
}

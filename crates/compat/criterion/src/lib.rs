//! Offline shim for the `criterion` API subset this workspace uses.
//!
//! Implements a small wall-clock benchmark harness behind criterion's
//! interface (`Criterion`, `BenchmarkGroup`, `Bencher`, `BenchmarkId`,
//! `Throughput`, `BatchSize`, `criterion_group!`, `criterion_main!`).
//! Each benchmark is auto-calibrated to a short measurement window and
//! reports mean ns/iteration on stdout. Set `CRITERION_QUICK=1` (or pass
//! `--quick`) to shrink the window for smoke runs.

use std::fmt::Display;
use std::hint::black_box as std_black_box;
use std::time::{Duration, Instant};

/// Opaque-to-the-optimiser value wrapper, re-exported from `std::hint`.
pub fn black_box<T>(x: T) -> T {
    std_black_box(x)
}

/// Identifies one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// An id combining a function name and a parameter value.
    pub fn new<P: Display>(name: &str, parameter: P) -> Self {
        BenchmarkId {
            label: format!("{name}/{parameter}"),
        }
    }

    /// An id naming only the parameter value.
    pub fn from_parameter<P: Display>(parameter: P) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(label: &str) -> Self {
        BenchmarkId {
            label: label.to_string(),
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(label: String) -> Self {
        BenchmarkId { label }
    }
}

/// Throughput annotation for a benchmark group (recorded, used to report
/// elements/second alongside time per iteration).
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Iterations process this many logical elements each.
    Elements(u64),
    /// Iterations process this many bytes each.
    Bytes(u64),
}

/// How batched iteration amortises setup cost; the shim treats all variants
/// identically.
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One setup call per iteration.
    PerIteration,
}

/// Drives timed iterations of one benchmark routine.
pub struct Bencher {
    measurement: Duration,
    /// Mean nanoseconds per iteration, filled in by `iter`.
    ns_per_iter: f64,
    iters: u64,
}

impl Bencher {
    /// Runs `routine` repeatedly and records its mean time.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // Calibrate: find an iteration count filling the measurement window.
        let mut n: u64 = 1;
        loop {
            let start = Instant::now();
            for _ in 0..n {
                std_black_box(routine());
            }
            let elapsed = start.elapsed();
            if elapsed >= self.measurement || n >= u64::MAX / 2 {
                self.ns_per_iter = elapsed.as_nanos() as f64 / n as f64;
                self.iters = n;
                return;
            }
            let target = self.measurement.as_nanos() as f64;
            let scale = (target / elapsed.as_nanos().max(1) as f64).clamp(2.0, 100.0);
            n = ((n as f64) * scale) as u64;
        }
    }

    /// Runs `routine` on fresh inputs from `setup`, timing only `routine`.
    pub fn iter_batched<I, O, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> O,
    {
        let mut n: u64 = 1;
        loop {
            let inputs: Vec<I> = (0..n).map(|_| setup()).collect();
            let start = Instant::now();
            for input in inputs {
                std_black_box(routine(input));
            }
            let elapsed = start.elapsed();
            if elapsed >= self.measurement || n >= 1 << 20 {
                self.ns_per_iter = elapsed.as_nanos() as f64 / n as f64;
                self.iters = n;
                return;
            }
            let target = self.measurement.as_nanos() as f64;
            let scale = (target / elapsed.as_nanos().max(1) as f64).clamp(2.0, 100.0);
            n = ((n as f64) * scale) as u64;
        }
    }
}

fn quick_mode() -> bool {
    std::env::var("CRITERION_QUICK")
        .map(|v| v != "0")
        .unwrap_or(false)
        || std::env::args().any(|a| a == "--quick")
}

fn measurement_window() -> Duration {
    if quick_mode() {
        Duration::from_millis(20)
    } else {
        Duration::from_millis(300)
    }
}

fn report(group: Option<&str>, label: &str, bencher: &Bencher, throughput: Option<Throughput>) {
    let name = match group {
        Some(g) => format!("{g}/{label}"),
        None => label.to_string(),
    };
    let per_iter = bencher.ns_per_iter;
    let rate = match throughput {
        Some(Throughput::Elements(n)) => {
            format!("  {:.0} elem/s", n as f64 * 1e9 / per_iter.max(1e-9))
        }
        Some(Throughput::Bytes(n)) => {
            format!("  {:.0} B/s", n as f64 * 1e9 / per_iter.max(1e-9))
        }
        None => String::new(),
    };
    println!(
        "bench {name:<48} {per_iter:>14.1} ns/iter  ({} iters){rate}",
        bencher.iters
    );
}

/// A named collection of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    throughput: Option<Throughput>,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Annotates subsequent benchmarks with a throughput.
    pub fn throughput(&mut self, throughput: Throughput) {
        self.throughput = Some(throughput);
    }

    /// Accepted for API compatibility; the shim auto-calibrates its
    /// iteration counts instead of sampling.
    pub fn sample_size(&mut self, _samples: usize) -> &mut Self {
        self
    }

    /// Accepted for API compatibility; the shim uses a fixed short
    /// measurement window.
    pub fn measurement_time(&mut self, _window: std::time::Duration) -> &mut Self {
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<I: Into<BenchmarkId>, F: FnMut(&mut Bencher)>(
        &mut self,
        id: I,
        mut f: F,
    ) -> &mut Self {
        let id = id.into();
        let mut bencher = Bencher {
            measurement: measurement_window(),
            ns_per_iter: 0.0,
            iters: 0,
        };
        f(&mut bencher);
        report(Some(&self.name), &id.label, &bencher, self.throughput);
        self
    }

    /// Runs one parameterised benchmark in the group.
    pub fn bench_with_input<I: Into<BenchmarkId>, P: ?Sized, F: FnMut(&mut Bencher, &P)>(
        &mut self,
        id: I,
        input: &P,
        mut f: F,
    ) -> &mut Self {
        let id = id.into();
        let mut bencher = Bencher {
            measurement: measurement_window(),
            ns_per_iter: 0.0,
            iters: 0,
        };
        f(&mut bencher, input);
        report(Some(&self.name), &id.label, &bencher, self.throughput);
        self
    }

    /// Ends the group.
    pub fn finish(&mut self) {}
}

/// The benchmark harness entry point.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Starts a named benchmark group.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_string(),
            throughput: None,
            _criterion: self,
        }
    }

    /// Runs one stand-alone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut bencher = Bencher {
            measurement: measurement_window(),
            ns_per_iter: 0.0,
            iters: 0,
        };
        f(&mut bencher);
        report(None, name, &bencher, None);
        self
    }
}

/// Declares a benchmark group function, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the benchmark `main` function, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_something() {
        std::env::set_var("CRITERION_QUICK", "1");
        let mut c = Criterion::default();
        c.bench_function("noop", |b| b.iter(|| 1 + 1));
        let mut group = c.benchmark_group("group");
        group.throughput(Throughput::Elements(1));
        group.bench_with_input(BenchmarkId::from_parameter(4), &4u64, |b, &n| {
            b.iter_batched(|| n, |v| v * 2, BatchSize::SmallInput)
        });
        group.finish();
    }
}

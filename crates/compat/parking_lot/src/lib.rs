//! Offline shim for the `parking_lot` API subset this workspace uses.
//!
//! Wraps `std::sync` primitives with `parking_lot`'s non-poisoning
//! interface: `lock()` / `read()` / `write()` return guards directly instead
//! of `Result`s. Poisoning is recovered from (`into_inner` on the poison
//! error) because a panicking holder in this codebase can only leave fully
//! written plain-old-data behind.

use std::fmt;
use std::sync::{MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// A mutual-exclusion lock that never poisons.
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Creates a new mutex protecting `value`.
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex and returns the protected value.
    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until it is available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        match self.inner.lock() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

impl<T: fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.inner.try_lock() {
            Ok(guard) => f.debug_struct("Mutex").field("data", &&*guard).finish(),
            Err(_) => f.debug_struct("Mutex").field("data", &"<locked>").finish(),
        }
    }
}

/// A reader-writer lock that never poisons.
pub struct RwLock<T: ?Sized> {
    inner: std::sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// Creates a new reader-writer lock protecting `value`.
    pub const fn new(value: T) -> Self {
        RwLock {
            inner: std::sync::RwLock::new(value),
        }
    }

    /// Consumes the lock and returns the protected value.
    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        match self.inner.read() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Acquires exclusive write access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        match self.inner.write() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

impl<T: Default> Default for RwLock<T> {
    fn default() -> Self {
        RwLock::new(T::default())
    }
}

impl<T: fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.inner.try_read() {
            Ok(guard) => f.debug_struct("RwLock").field("data", &&*guard).finish(),
            Err(_) => f.debug_struct("RwLock").field("data", &"<locked>").finish(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_round_trips() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_allows_concurrent_reads() {
        let l = RwLock::new(vec![1, 2, 3]);
        let a = l.read();
        let b = l.read();
        assert_eq!(a.len() + b.len(), 6);
        drop((a, b));
        l.write().push(4);
        assert_eq!(l.read().len(), 4);
    }
}

//! The warm-container pool backing a [`FaasPlatform`](crate::FaasPlatform).
//!
//! Containers move through a small state machine driven entirely by virtual
//! time: **provisioning** (`ready_at` in the future) → **busy**
//! (`busy_until` in the future) → **warm** (idle, within the keep-alive
//! budget of `last_used`) → **expired** (reclaimed on the next pool scan).
//! The pool itself holds no latency logic — the platform charges
//! provisioning and cold-start time into the invocation; the pool only
//! answers "which container, if any, can take this request".

use servo_types::{SimDuration, SimTime};

/// One container ("execution environment") of the deployed function.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Container {
    /// When provisioning completes and the container can first run code.
    pub ready_at: SimTime,
    /// The instant at which the container finishes its current invocation.
    pub busy_until: SimTime,
    /// The instant of the last completed (or started) invocation, used to
    /// decide idle reclamation.
    pub last_used: SimTime,
}

/// A capacity-capped pool of containers in creation order.
#[derive(Debug, Clone, Default)]
pub struct WarmPool {
    containers: Vec<Container>,
    cap: Option<usize>,
}

impl WarmPool {
    /// Creates an empty pool holding at most `cap` containers (`None` =
    /// unlimited).
    pub fn new(cap: Option<usize>) -> Self {
        WarmPool {
            containers: Vec::new(),
            cap,
        }
    }

    /// The configured container cap.
    pub fn cap(&self) -> Option<usize> {
        self.cap
    }

    /// Number of containers currently in the pool (any state).
    pub fn len(&self) -> usize {
        self.containers.len()
    }

    /// True if the pool has no containers.
    pub fn is_empty(&self) -> bool {
        self.containers.is_empty()
    }

    /// The containers, in creation order.
    pub fn containers(&self) -> &[Container] {
        &self.containers
    }

    /// Containers busy (or still provisioning) at `now`.
    pub fn busy(&self, now: SimTime) -> usize {
        self.containers
            .iter()
            .filter(|c| c.busy_until > now)
            .count()
    }

    /// Containers idle at `now` but still within the keep-alive budget.
    pub fn warm(&self, now: SimTime, keep_alive: SimDuration) -> usize {
        self.containers
            .iter()
            .filter(|c| now.saturating_since(c.last_used) <= keep_alive)
            .count()
    }

    /// Removes containers idle longer than `keep_alive` and returns them
    /// (for idle-time accounting). `hold` suppresses reclamation entirely —
    /// the platform's scale-down cooldown.
    pub fn reclaim_expired(
        &mut self,
        now: SimTime,
        keep_alive: SimDuration,
        hold: bool,
    ) -> Vec<Container> {
        if hold {
            return Vec::new();
        }
        let mut expired = Vec::new();
        self.containers.retain(|c| {
            if now.saturating_since(c.last_used) <= keep_alive {
                true
            } else {
                expired.push(*c);
                false
            }
        });
        expired
    }

    /// Index of the first container free at `at` (warm checkout order is
    /// creation order, which keeps reuse deterministic).
    pub fn first_free_at(&self, at: SimTime) -> Option<usize> {
        self.containers.iter().position(|c| c.busy_until <= at)
    }

    /// Adds a container provisioned at `now` that becomes ready at
    /// `ready_at`, returning its index, or `None` if the pool is at cap.
    pub fn provision(&mut self, now: SimTime, ready_at: SimTime) -> Option<usize> {
        if self.cap.is_some_and(|cap| self.containers.len() >= cap) {
            return None;
        }
        self.containers.push(Container {
            ready_at,
            busy_until: now,
            last_used: now,
        });
        Some(self.containers.len() - 1)
    }

    /// Mutable access to one container.
    pub fn get_mut(&mut self, index: usize) -> &mut Container {
        &mut self.containers[index]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn provision_respects_cap() {
        let mut pool = WarmPool::new(Some(2));
        assert!(pool.provision(SimTime::ZERO, SimTime::ZERO).is_some());
        assert!(pool.provision(SimTime::ZERO, SimTime::ZERO).is_some());
        assert!(pool.provision(SimTime::ZERO, SimTime::ZERO).is_none());
        assert_eq!(pool.len(), 2);
    }

    #[test]
    fn checkout_prefers_earliest_created_free_container() {
        let mut pool = WarmPool::new(None);
        let a = pool.provision(SimTime::ZERO, SimTime::ZERO).unwrap();
        let b = pool.provision(SimTime::ZERO, SimTime::ZERO).unwrap();
        pool.get_mut(a).busy_until = SimTime::from_secs(10);
        let now = SimTime::from_secs(1);
        assert_eq!(pool.first_free_at(now), Some(b));
    }

    #[test]
    fn reclaim_returns_expired_and_hold_suppresses() {
        let mut pool = WarmPool::new(None);
        pool.provision(SimTime::ZERO, SimTime::ZERO);
        let later = SimTime::from_secs(100);
        assert!(pool
            .reclaim_expired(later, SimDuration::from_secs(10), true)
            .is_empty());
        assert_eq!(pool.len(), 1);
        let expired = pool.reclaim_expired(later, SimDuration::from_secs(10), false);
        assert_eq!(expired.len(), 1);
        assert!(pool.is_empty());
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        /// One random pool operation: provision, advance-and-reclaim, or
        /// mark a container busy into the future.
        fn apply(pool: &mut WarmPool, now: &mut SimTime, op: (u8, u64)) -> usize {
            let (kind, amount) = op;
            match kind % 3 {
                0 => {
                    pool.provision(*now, *now + SimDuration::from_millis(amount % 500));
                }
                1 => {
                    *now += SimDuration::from_millis(amount % 5_000);
                    return pool
                        .reclaim_expired(*now, SimDuration::from_secs(2), false)
                        .len();
                }
                _ => {
                    if let Some(i) = pool.first_free_at(*now) {
                        let done = *now + SimDuration::from_millis(1 + amount % 300);
                        let c = pool.get_mut(i);
                        c.busy_until = done;
                        c.last_used = done;
                    }
                }
            }
            0
        }

        proptest! {
            /// The pool never exceeds its cap, and the warm count never
            /// exceeds the pool size.
            #[test]
            fn warm_pool_never_exceeds_cap(
                ops in prop::collection::vec((any::<u8>(), any::<u64>()), 1..120),
                cap in 1usize..12,
            ) {
                let mut pool = WarmPool::new(Some(cap));
                let mut now = SimTime::ZERO;
                for op in ops {
                    apply(&mut pool, &mut now, op);
                    prop_assert!(pool.len() <= cap);
                    prop_assert!(pool.warm(now, SimDuration::from_secs(2)) <= pool.len());
                }
            }

            /// Expiry is a deterministic function of the operation history:
            /// two pools fed the same operations reclaim identical
            /// containers at identical instants.
            #[test]
            fn expiry_is_deterministic(
                ops in prop::collection::vec((any::<u8>(), any::<u64>()), 1..120),
            ) {
                let mut a = WarmPool::new(None);
                let mut b = WarmPool::new(None);
                let (mut now_a, mut now_b) = (SimTime::ZERO, SimTime::ZERO);
                for op in ops {
                    let ra = apply(&mut a, &mut now_a, op);
                    let rb = apply(&mut b, &mut now_b, op);
                    prop_assert_eq!(ra, rb);
                    prop_assert_eq!(a.containers(), b.containers());
                }
            }
        }
    }
}

//! Utilization-based billing.
//!
//! Serverless billing is fine-grained: the user pays per millisecond of
//! execution, scaled by the memory size, plus a small per-request fee
//! (Section II-C of the paper). The meter here uses AWS Lambda's public
//! prices, which is what the paper's $0.216–$0.244 per hour estimate is
//! based on.

use servo_types::{MemoryMb, SimDuration, UsdPerHour};

/// Price per GB-second of function execution (AWS Lambda, x86).
pub const PRICE_PER_GB_SECOND: f64 = 0.000_016_666_7;

/// Price per single request.
pub const PRICE_PER_REQUEST: f64 = 0.20 / 1_000_000.0;

/// Accumulates the cost of function invocations.
///
/// Two pools of GB-time are metered separately: **billed** execution time
/// (what the provider invoices, driving [`total_cost_usd`]) and **warm
/// idle** time — containers kept alive between invocations by the
/// keep-alive policy. Idle time is what a keep-alive budget *costs*; it is
/// deliberately excluded from [`total_cost_usd`] so that adding the
/// platform model never changed any existing billing assertion, and
/// surfaced instead through [`total_cost_with_idle_usd`].
///
/// [`total_cost_usd`]: BillingMeter::total_cost_usd
/// [`total_cost_with_idle_usd`]: BillingMeter::total_cost_with_idle_usd
#[derive(Debug, Clone, Default, PartialEq)]
pub struct BillingMeter {
    invocations: u64,
    billed_gb_seconds: f64,
    warm_idle_gb_seconds: f64,
}

impl BillingMeter {
    /// Creates an empty meter.
    pub fn new() -> Self {
        BillingMeter::default()
    }

    /// Records one invocation that executed for `billed_duration` on a
    /// function with `memory` configured.
    ///
    /// Billed duration is rounded up to the next millisecond, as commercial
    /// platforms do.
    pub fn record(&mut self, memory: MemoryMb, billed_duration: SimDuration) {
        self.invocations += 1;
        let millis = billed_duration.as_millis_f64().ceil();
        self.billed_gb_seconds += memory.as_gb() * millis / 1_000.0;
    }

    /// Number of invocations recorded.
    pub fn invocations(&self) -> u64 {
        self.invocations
    }

    /// Total GB-seconds billed.
    pub fn billed_gb_seconds(&self) -> f64 {
        self.billed_gb_seconds
    }

    /// Total GB-milliseconds billed — the granularity commercial platforms
    /// invoice at, convenient for cost sweeps over short runs.
    pub fn billed_gb_ms(&self) -> f64 {
        self.billed_gb_seconds * 1_000.0
    }

    /// Records `idle` of warm-but-unused container time on a function with
    /// `memory` configured (keep-alive cost, not billed execution).
    pub fn record_idle(&mut self, memory: MemoryMb, idle: SimDuration) {
        self.warm_idle_gb_seconds += memory.as_gb() * idle.as_secs_f64();
    }

    /// Total GB-seconds of warm-idle container time recorded.
    pub fn warm_idle_gb_seconds(&self) -> f64 {
        self.warm_idle_gb_seconds
    }

    /// Dollar value of the warm-idle time, priced at the execution rate
    /// (an upper bound; providers price provisioned concurrency lower).
    pub fn warm_idle_cost_usd(&self) -> f64 {
        self.warm_idle_gb_seconds * PRICE_PER_GB_SECOND
    }

    /// Total cost in dollars.
    pub fn total_cost_usd(&self) -> f64 {
        self.billed_gb_seconds * PRICE_PER_GB_SECOND + self.invocations as f64 * PRICE_PER_REQUEST
    }

    /// Total cost including the warm-idle time bought by keep-alive.
    pub fn total_cost_with_idle_usd(&self) -> f64 {
        self.total_cost_usd() + self.warm_idle_cost_usd()
    }

    /// The cost rate if the recorded usage was accumulated over
    /// `elapsed` of virtual time.
    ///
    /// # Panics
    ///
    /// Panics if `elapsed` is zero.
    pub fn cost_rate(&self, elapsed: SimDuration) -> UsdPerHour {
        assert!(
            elapsed > SimDuration::ZERO,
            "cannot compute a rate over zero elapsed time"
        );
        let hours = elapsed.as_secs_f64() / 3600.0;
        UsdPerHour::new(self.total_cost_usd() / hours)
    }

    /// Merges another meter's usage into this one.
    pub fn merge(&mut self, other: &BillingMeter) {
        self.invocations += other.invocations;
        self.billed_gb_seconds += other.billed_gb_seconds;
        self.warm_idle_gb_seconds += other.warm_idle_gb_seconds;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_accumulate() {
        let mut m = BillingMeter::new();
        m.record(MemoryMb::new(1024), SimDuration::from_millis(1000));
        m.record(MemoryMb::new(1024), SimDuration::from_millis(500));
        assert_eq!(m.invocations(), 2);
        assert!((m.billed_gb_seconds() - 1.5).abs() < 1e-9);
        assert!(m.total_cost_usd() > 0.0);
    }

    #[test]
    fn sub_millisecond_rounds_up() {
        let mut m = BillingMeter::new();
        m.record(MemoryMb::new(2048), SimDuration::from_micros(100));
        assert!((m.billed_gb_seconds() - 2.0 * 0.001).abs() < 1e-9);
    }

    #[test]
    fn cost_rate_matches_hand_computation() {
        let mut m = BillingMeter::new();
        // 600 invocations of 1 s at 1 GB over one hour.
        for _ in 0..600 {
            m.record(MemoryMb::new(1024), SimDuration::from_secs(1));
        }
        let rate = m.cost_rate(SimDuration::from_secs(3600));
        let expected = 600.0 * PRICE_PER_GB_SECOND + 600.0 * PRICE_PER_REQUEST;
        assert!((rate.value() - expected).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "zero elapsed")]
    fn zero_elapsed_panics() {
        BillingMeter::new().cost_rate(SimDuration::ZERO);
    }

    #[test]
    fn merge_adds_usage() {
        let mut a = BillingMeter::new();
        a.record(MemoryMb::new(512), SimDuration::from_secs(2));
        let mut b = BillingMeter::new();
        b.record(MemoryMb::new(512), SimDuration::from_secs(3));
        b.record_idle(MemoryMb::new(512), SimDuration::from_secs(4));
        a.merge(&b);
        assert_eq!(a.invocations(), 2);
        assert!((a.billed_gb_seconds() - 2.5).abs() < 1e-9);
        assert!((a.warm_idle_gb_seconds() - 2.0).abs() < 1e-9);
    }

    #[test]
    fn idle_time_is_metered_separately_from_billed_cost() {
        let mut m = BillingMeter::new();
        m.record(MemoryMb::new(1024), SimDuration::from_secs(1));
        let billed_only = m.total_cost_usd();
        m.record_idle(MemoryMb::new(1024), SimDuration::from_secs(60));
        // Idle never moves the provider invoice...
        assert_eq!(m.total_cost_usd(), billed_only);
        // ...but shows up in the keep-alive-inclusive total.
        assert!(m.total_cost_with_idle_usd() > billed_only);
        assert!((m.warm_idle_gb_seconds() - 60.0).abs() < 1e-9);
        assert!((m.billed_gb_ms() - 1_000.0).abs() < 1e-9);
    }

    #[test]
    fn offloading_cost_is_in_papers_ballpark() {
        // The paper multiplies mean function latency by invocations per
        // minute and reports $0.216-$0.244/h. Reproduce the arithmetic for a
        // representative configuration: ~120 invocations/minute of ~180 ms
        // billed compute on a 10 GB function.
        let mut m = BillingMeter::new();
        for _ in 0..(120 * 60) {
            m.record(MemoryMb::new(10240), SimDuration::from_millis(180));
        }
        let rate = m.cost_rate(SimDuration::from_secs(3600)).value();
        assert!(rate > 0.15 && rate < 0.35, "rate was {rate}");
    }
}

//! A deterministic queue-depth autoscaler for elastic worker pools.
//!
//! The same mechanism serves two kinds of pools:
//!
//! * **sim-time pools** — the simulated generation worker pool sizes itself
//!   from the backlog it sees each tick, and a provisioning delay means new
//!   workers only become ready a bit later in *virtual* time;
//! * **real-thread pools** — the persistence pipeline uses the scaler's
//!   decision as a thread quota (provisioning delay zero: spawning an OS
//!   thread is instant at simulation granularity).
//!
//! The scaler is a pure function of the observation sequence `(now,
//! backlog)` — no wall clock, no randomness — so elastic pools stay
//! deterministic and replayable.

use servo_types::{SimDuration, SimTime};

/// Sizing policy of an elastic worker pool.
///
/// # Example
///
/// ```
/// use servo_faas::{Autoscaler, AutoscalerConfig};
/// use servo_types::SimTime;
///
/// let mut scaler = Autoscaler::new(AutoscalerConfig::elastic(1, 8));
/// // A deep backlog grows the pool immediately (zero provisioning delay).
/// assert_eq!(scaler.observe(SimTime::ZERO, 32), 8);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AutoscalerConfig {
    /// Lower bound on ready workers; the pool starts here.
    pub min_workers: usize,
    /// Upper bound on ready plus provisioning workers.
    pub max_workers: usize,
    /// Queue items one worker is expected to absorb; the pool targets
    /// `ceil(backlog / backlog_per_worker)` workers.
    pub backlog_per_worker: usize,
    /// Virtual time between deciding to add a worker and it becoming ready.
    pub provisioning_delay: SimDuration,
    /// Minimum time after a scale-up before any worker is retired.
    pub scale_down_cooldown: SimDuration,
}

impl AutoscalerConfig {
    /// A fixed-size pool: scaling disabled, always `workers` ready. This is
    /// the frictionless configuration — statically sized pools are elastic
    /// pools that never move.
    pub fn fixed(workers: usize) -> Self {
        let workers = workers.max(1);
        AutoscalerConfig {
            min_workers: workers,
            max_workers: workers,
            backlog_per_worker: 1,
            provisioning_delay: SimDuration::ZERO,
            scale_down_cooldown: SimDuration::ZERO,
        }
    }

    /// An instant elastic pool between `min` and `max` workers, growing one
    /// worker per four queued items.
    pub fn elastic(min: usize, max: usize) -> Self {
        let min = min.max(1);
        AutoscalerConfig {
            min_workers: min,
            max_workers: max.max(min),
            backlog_per_worker: 4,
            provisioning_delay: SimDuration::ZERO,
            scale_down_cooldown: SimDuration::ZERO,
        }
    }

    /// Sets the backlog-per-worker growth threshold.
    pub fn with_backlog_per_worker(mut self, backlog: usize) -> Self {
        self.backlog_per_worker = backlog.max(1);
        self
    }

    /// Sets the provisioning delay for new workers.
    pub fn with_provisioning_delay(mut self, delay: SimDuration) -> Self {
        self.provisioning_delay = delay;
        self
    }

    /// Sets the scale-down cooldown.
    pub fn with_scale_down_cooldown(mut self, cooldown: SimDuration) -> Self {
        self.scale_down_cooldown = cooldown;
        self
    }
}

/// Lifetime counters of an [`Autoscaler`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AutoscalerStats {
    /// Scale-up decisions taken.
    pub scale_up_events: u64,
    /// Scale-down decisions taken.
    pub scale_down_events: u64,
    /// Workers provisioned in total (each worker counted once).
    pub workers_provisioned: u64,
    /// Workers retired in total.
    pub workers_retired: u64,
    /// Largest ready pool observed.
    pub peak_workers: usize,
}

/// A deterministic autoscaler: observe backlog, get back ready capacity.
#[derive(Debug, Clone)]
pub struct Autoscaler {
    config: AutoscalerConfig,
    ready: usize,
    /// Instants at which in-flight workers become ready. Each entry is
    /// moved into `ready` exactly once, when its instant passes.
    provisioning: Vec<SimTime>,
    last_scale_up: Option<SimTime>,
    stats: AutoscalerStats,
}

impl Autoscaler {
    /// Creates a pool that starts at `min_workers` ready.
    pub fn new(config: AutoscalerConfig) -> Self {
        Autoscaler {
            ready: config.min_workers,
            provisioning: Vec::new(),
            last_scale_up: None,
            stats: AutoscalerStats {
                peak_workers: config.min_workers,
                ..AutoscalerStats::default()
            },
            config,
        }
    }

    /// The sizing policy.
    pub fn config(&self) -> &AutoscalerConfig {
        &self.config
    }

    /// Workers ready as of the last observation.
    pub fn ready_workers(&self) -> usize {
        self.ready
    }

    /// Workers provisioned but not yet ready.
    pub fn in_flight(&self) -> usize {
        self.provisioning.len()
    }

    /// Lifetime counters.
    pub fn stats(&self) -> AutoscalerStats {
        self.stats
    }

    fn desired(&self, backlog: usize) -> usize {
        let per = self.config.backlog_per_worker.max(1);
        let needed = backlog.div_ceil(per);
        needed.clamp(self.config.min_workers, self.config.max_workers)
    }

    /// Observes the queue at `now` and returns the ready worker capacity.
    ///
    /// Provisioning entries whose delay has elapsed mature into ready
    /// workers (each exactly once); if the backlog asks for more capacity
    /// than is ready or in flight, new workers are provisioned; if it asks
    /// for less and the scale-down cooldown has elapsed, surplus ready
    /// workers retire immediately.
    pub fn observe(&mut self, now: SimTime, backlog: usize) -> usize {
        // Mature in-flight workers exactly once.
        let before = self.provisioning.len();
        self.provisioning.retain(|ready_at| *ready_at > now);
        self.ready += before - self.provisioning.len();

        let desired = self.desired(backlog);
        let committed = self.ready + self.provisioning.len();
        if desired > committed {
            let add = desired - committed;
            if self.config.provisioning_delay == SimDuration::ZERO {
                self.ready += add;
            } else {
                let ready_at = now + self.config.provisioning_delay;
                self.provisioning.extend(std::iter::repeat_n(ready_at, add));
            }
            self.last_scale_up = Some(now);
            self.stats.scale_up_events += 1;
            self.stats.workers_provisioned += add as u64;
        } else if desired < self.ready {
            let cooled = self
                .last_scale_up
                .is_none_or(|t| now.saturating_since(t) >= self.config.scale_down_cooldown);
            if cooled {
                let drop = self.ready - desired;
                self.ready = desired;
                self.stats.scale_down_events += 1;
                self.stats.workers_retired += drop as u64;
            }
        }

        self.stats.peak_workers = self.stats.peak_workers.max(self.ready);
        self.ready
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixed_pool_never_moves() {
        let mut a = Autoscaler::new(AutoscalerConfig::fixed(3));
        for (t, backlog) in [(0u64, 0usize), (1, 100), (2, 0), (3, 7)] {
            assert_eq!(a.observe(SimTime::from_secs(t), backlog), 3);
        }
        assert_eq!(a.stats().workers_provisioned, 0);
        assert_eq!(a.stats().workers_retired, 0);
    }

    #[test]
    fn instant_scaler_tracks_backlog() {
        let mut a = Autoscaler::new(AutoscalerConfig::elastic(1, 8));
        assert_eq!(a.observe(SimTime::ZERO, 0), 1);
        assert_eq!(a.observe(SimTime::from_secs(1), 12), 3);
        assert_eq!(a.observe(SimTime::from_secs(2), 100), 8);
        assert_eq!(a.observe(SimTime::from_secs(3), 0), 1);
    }

    #[test]
    fn provisioning_delay_defers_readiness() {
        let config =
            AutoscalerConfig::elastic(1, 4).with_provisioning_delay(SimDuration::from_secs(2));
        let mut a = Autoscaler::new(config);
        // Deep backlog at t=0: workers are in flight, not ready.
        assert_eq!(a.observe(SimTime::ZERO, 16), 1);
        assert_eq!(a.in_flight(), 3);
        // Still in flight before the delay elapses; no re-provisioning.
        assert_eq!(a.observe(SimTime::from_secs(1), 16), 1);
        assert_eq!(a.in_flight(), 3);
        assert_eq!(a.stats().workers_provisioned, 3);
        // Mature exactly once.
        assert_eq!(a.observe(SimTime::from_secs(2), 16), 4);
        assert_eq!(a.in_flight(), 0);
        assert_eq!(a.stats().workers_provisioned, 3);
    }

    #[test]
    fn cooldown_blocks_scale_down() {
        let config =
            AutoscalerConfig::elastic(1, 8).with_scale_down_cooldown(SimDuration::from_secs(10));
        let mut a = Autoscaler::new(config);
        assert_eq!(a.observe(SimTime::ZERO, 32), 8);
        // Backlog drains, but the cooldown pins capacity.
        assert_eq!(a.observe(SimTime::from_secs(5), 0), 8);
        // After the cooldown the pool releases down to min.
        assert_eq!(a.observe(SimTime::from_secs(10), 0), 1);
        assert_eq!(a.stats().workers_retired, 7);
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            /// Conservation: provisioning never double-counts a worker.
            /// After any observation sequence, min + provisioned - retired
            /// equals ready + in-flight exactly.
            #[test]
            fn provisioning_never_double_counts(
                steps in prop::collection::vec((0u64..5_000, 0usize..64), 1..60),
                min in 1usize..4,
                span in 1usize..9,
                delay_ms in 0u64..3_000,
                cooldown_ms in 0u64..3_000,
            ) {
                let config = AutoscalerConfig {
                    min_workers: min,
                    max_workers: min + span,
                    backlog_per_worker: 3,
                    provisioning_delay: SimDuration::from_millis(delay_ms),
                    scale_down_cooldown: SimDuration::from_millis(cooldown_ms),
                };
                let mut a = Autoscaler::new(config);
                let mut now = SimTime::ZERO;
                for (dt_ms, backlog) in steps {
                    now += SimDuration::from_millis(dt_ms);
                    let ready = a.observe(now, backlog);
                    prop_assert!(ready >= config.min_workers);
                    prop_assert!(ready + a.in_flight() <= config.max_workers);
                    let committed = (config.min_workers as u64
                        + a.stats().workers_provisioned)
                        .checked_sub(a.stats().workers_retired)
                        .expect("retired more workers than ever existed");
                    prop_assert_eq!(committed, (ready + a.in_flight()) as u64);
                }
            }
        }
    }
}

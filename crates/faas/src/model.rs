//! Platform-level friction: provisioning, keep-alive, pool caps, queuing.
//!
//! [`FunctionConfig`](crate::FunctionConfig) describes one *function*
//! (memory, latency distributions, timeout). [`PlatformConfig`] describes
//! the *platform* that schedules containers for it: how long provisioning a
//! new container takes, how long idle containers are kept warm, how fast the
//! autoscaler releases capacity, how many containers may exist at once, and
//! what happens to requests that arrive while the platform is saturated.
//!
//! The default configuration is [`PlatformConfig::frictionless`]: zero
//! provisioning delay, the function's own keep-alive, an instant autoscaler
//! and no request queue. A platform built with it behaves exactly like the
//! pre-platform-model `FaasPlatform` — same latencies, same rng draws, same
//! billing — which is what every equivalence proof in the workspace pins.

use servo_simkit::LatencyModel;
use servo_types::SimDuration;

/// Friction knobs of the serverless platform scheduling one function.
///
/// # Example
///
/// ```
/// use servo_faas::PlatformConfig;
/// use servo_types::SimDuration;
///
/// let frictionless = PlatformConfig::frictionless();
/// assert_eq!(frictionless, PlatformConfig::default());
/// assert!(frictionless.provisioning_delay == SimDuration::ZERO);
///
/// let realistic = PlatformConfig::aws_like();
/// assert!(realistic.provisioning_delay > SimDuration::ZERO);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PlatformConfig {
    /// Fixed autoscaler provisioning delay paid by every container start
    /// before the function's own cold-start latency.
    pub provisioning_delay: SimDuration,
    /// Optional stochastic part of the provisioning delay, drawn from the
    /// dedicated `"platform-friction"` substream so it never perturbs
    /// simulation rng streams.
    pub provisioning_jitter: Option<LatencyModel>,
    /// How long an idle container stays warm before the platform reclaims
    /// it. `None` uses the function's
    /// [`idle_timeout`](crate::FunctionConfig::idle_timeout).
    pub keep_alive: Option<SimDuration>,
    /// After provisioning a container, the autoscaler holds off reclaiming
    /// *any* idle container for this long (hysteresis against thrashing).
    pub scale_down_cooldown: SimDuration,
    /// Hard cap on the number of containers that may exist simultaneously
    /// (`None` = unlimited, the serverless default).
    pub max_containers: Option<usize>,
    /// Bounded FIFO request queue used when the platform is saturated
    /// (concurrency limit or container cap reached). `0` disables queuing:
    /// saturated requests are rejected, the pre-platform-model behaviour.
    pub queue_capacity: usize,
}

impl PlatformConfig {
    /// Zero added friction: instant provisioning, function-default
    /// keep-alive, no cooldown, unlimited containers, no queue. Identical
    /// to the platform behaviour before the platform model existed.
    pub fn frictionless() -> Self {
        PlatformConfig {
            provisioning_delay: SimDuration::ZERO,
            provisioning_jitter: None,
            keep_alive: None,
            scale_down_cooldown: SimDuration::ZERO,
            max_containers: None,
            queue_capacity: 0,
        }
    }

    /// A realistic AWS-like platform: a few hundred milliseconds of
    /// provisioning (sandbox placement and image pull, on top of the
    /// function's runtime-init cold start), function-default keep-alive, a
    /// scale-down cooldown of a minute, unlimited containers and a bounded
    /// queue instead of immediate rejection.
    pub fn aws_like() -> Self {
        PlatformConfig {
            provisioning_delay: SimDuration::from_millis(150),
            provisioning_jitter: Some(LatencyModel::new(90.0, 0.45).with_ceiling(2_000.0)),
            keep_alive: None,
            scale_down_cooldown: SimDuration::from_secs(60),
            max_containers: None,
            queue_capacity: 1_024,
        }
    }

    /// Sets the fixed provisioning delay.
    pub fn with_provisioning_delay(mut self, delay: SimDuration) -> Self {
        self.provisioning_delay = delay;
        self
    }

    /// Sets the stochastic provisioning jitter model.
    pub fn with_provisioning_jitter(mut self, jitter: LatencyModel) -> Self {
        self.provisioning_jitter = Some(jitter);
        self
    }

    /// Sets an explicit keep-alive budget for idle containers.
    pub fn with_keep_alive(mut self, keep_alive: SimDuration) -> Self {
        self.keep_alive = Some(keep_alive);
        self
    }

    /// Sets the scale-down cooldown.
    pub fn with_scale_down_cooldown(mut self, cooldown: SimDuration) -> Self {
        self.scale_down_cooldown = cooldown;
        self
    }

    /// Caps the container pool.
    pub fn with_max_containers(mut self, cap: usize) -> Self {
        self.max_containers = Some(cap);
        self
    }

    /// Sets the saturation queue capacity (`0` = reject when saturated).
    pub fn with_queue_capacity(mut self, capacity: usize) -> Self {
        self.queue_capacity = capacity;
        self
    }

    /// The effective keep-alive given the function's idle timeout.
    pub fn effective_keep_alive(&self, function_idle_timeout: SimDuration) -> SimDuration {
        self.keep_alive.unwrap_or(function_idle_timeout)
    }

    /// True if this configuration adds no friction over the bare function.
    pub fn is_frictionless(&self) -> bool {
        *self == PlatformConfig::frictionless()
    }
}

impl Default for PlatformConfig {
    fn default() -> Self {
        PlatformConfig::frictionless()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_frictionless() {
        assert!(PlatformConfig::default().is_frictionless());
        assert_eq!(PlatformConfig::default(), PlatformConfig::frictionless());
    }

    #[test]
    fn aws_like_adds_friction() {
        let p = PlatformConfig::aws_like();
        assert!(!p.is_frictionless());
        assert!(p.provisioning_delay > SimDuration::ZERO);
        assert!(p.queue_capacity > 0);
    }

    #[test]
    fn builders_compose() {
        let p = PlatformConfig::frictionless()
            .with_keep_alive(SimDuration::from_secs(5))
            .with_max_containers(8)
            .with_queue_capacity(16)
            .with_provisioning_delay(SimDuration::from_millis(300))
            .with_scale_down_cooldown(SimDuration::from_secs(30));
        assert_eq!(p.keep_alive, Some(SimDuration::from_secs(5)));
        assert_eq!(p.max_containers, Some(8));
        assert_eq!(p.queue_capacity, 16);
        assert!(!p.is_frictionless());
    }

    #[test]
    fn effective_keep_alive_falls_back_to_function() {
        let fallback = SimDuration::from_secs(120);
        assert_eq!(
            PlatformConfig::frictionless().effective_keep_alive(fallback),
            fallback
        );
        let explicit = PlatformConfig::frictionless().with_keep_alive(SimDuration::from_secs(2));
        assert_eq!(
            explicit.effective_keep_alive(fallback),
            SimDuration::from_secs(2)
        );
    }
}

//! Function-as-a-Service platform simulator.
//!
//! The paper runs Servo's offloaded components on AWS Lambda and Azure
//! Functions. Those platforms are not available in this reproduction, so
//! this crate models the behaviour the experiments depend on:
//!
//! * **invocation latency** — a per-invocation platform/network overhead plus
//!   compute time that scales with the memory (vCPU share) allocated to the
//!   function (Figure 11);
//! * **cold starts** — the first invocation on a new container pays a large
//!   extra latency, and idle containers are deallocated after a few minutes
//!   (the paper observes AWS reclaiming resources "within minutes",
//!   Section IV-C);
//! * **elastic concurrency** — every concurrent request gets its own
//!   container, the property that lets Servo fan out one function per
//!   simulated construct or per chunk;
//! * **billing** — per-millisecond, per-GB billing plus a per-request fee,
//!   used to reproduce the paper's cost estimate of $0.216–$0.244 per hour.
//!
//! # Example
//!
//! ```
//! use servo_faas::{FaasPlatform, FunctionConfig};
//! use servo_simkit::SimRng;
//! use servo_types::{MemoryMb, SimTime};
//!
//! let config = FunctionConfig::aws_like(MemoryMb::new(2048));
//! let mut platform = FaasPlatform::new(config, SimRng::seed(7));
//! let inv = platform.invoke(SimTime::ZERO, 100.0).unwrap();
//! assert!(inv.completed_at > SimTime::ZERO);
//! assert!(inv.cold_start); // first invocation is always cold
//! ```

#![warn(missing_docs)]

pub mod autoscaler;
pub mod billing;
pub mod config;
pub mod model;
pub mod platform;
pub mod pool;
pub mod queue;

pub use autoscaler::{Autoscaler, AutoscalerConfig, AutoscalerStats};
pub use billing::BillingMeter;
pub use config::FunctionConfig;
pub use model::PlatformConfig;
pub use platform::{FaasPlatform, Invocation, PlatformStats};
pub use pool::{Container, WarmPool};
pub use queue::RequestQueue;

//! A bounded request queue that drains FIFO within each priority class.
//!
//! Saturated pools (the FaaS platform at its concurrency limit, worker
//! pools behind their backlog) park requests here instead of rejecting
//! them. The queue is generic over the priority type so each consumer can
//! bring its own ordering — the storage pipeline's `Priority` enum, the
//! generation backend's single class, or the platform's arrival order.

use std::collections::{BTreeMap, VecDeque};

/// A bounded queue draining highest-priority first, FIFO within a priority.
///
/// `P` orders classes with *larger* values draining first (matching the
/// storage crate's `Priority`, where `Urgent > Background`).
///
/// # Example
///
/// ```
/// use servo_faas::RequestQueue;
///
/// let mut q: RequestQueue<u8, &str> = RequestQueue::bounded(4);
/// q.push(0, "background").unwrap();
/// q.push(2, "urgent").unwrap();
/// q.push(0, "background-2").unwrap();
/// assert_eq!(q.pop(), Some((2, "urgent")));
/// assert_eq!(q.pop(), Some((0, "background")));
/// assert_eq!(q.pop(), Some((0, "background-2")));
/// ```
#[derive(Debug, Clone)]
pub struct RequestQueue<P: Ord, T> {
    classes: BTreeMap<P, VecDeque<T>>,
    len: usize,
    capacity: usize,
}

impl<P: Ord, T> RequestQueue<P, T> {
    /// Creates a queue holding at most `capacity` requests across all
    /// priority classes.
    pub fn bounded(capacity: usize) -> Self {
        RequestQueue {
            classes: BTreeMap::new(),
            len: 0,
            capacity,
        }
    }

    /// Total queued requests.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if nothing is queued.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Enqueues `item` under `priority`.
    ///
    /// # Errors
    ///
    /// Returns the item back when the queue is full.
    pub fn push(&mut self, priority: P, item: T) -> Result<(), T> {
        if self.len >= self.capacity {
            return Err(item);
        }
        self.classes.entry(priority).or_default().push_back(item);
        self.len += 1;
        Ok(())
    }

    /// Dequeues the oldest request of the highest priority class.
    pub fn pop(&mut self) -> Option<(P, T)>
    where
        P: Clone,
    {
        let priority = self.classes.keys().next_back()?.clone();
        let class = self
            .classes
            .get_mut(&priority)
            .expect("priority key just observed");
        let item = class.pop_front().expect("classes are never left empty");
        if class.is_empty() {
            self.classes.remove(&priority);
        }
        self.len -= 1;
        Some((priority, item))
    }

    /// Drops queued requests that no longer satisfy `keep`, returning how
    /// many were removed.
    pub fn prune(&mut self, mut keep: impl FnMut(&P, &T) -> bool) -> usize {
        let before = self.len;
        self.classes.retain(|priority, class| {
            class.retain(|item| keep(priority, item));
            !class.is_empty()
        });
        self.len = self.classes.values().map(VecDeque::len).sum();
        before - self.len
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bounded_rejects_overflow() {
        let mut q: RequestQueue<u8, u32> = RequestQueue::bounded(2);
        q.push(0, 1).unwrap();
        q.push(0, 2).unwrap();
        assert_eq!(q.push(1, 3), Err(3));
        assert_eq!(q.len(), 2);
    }

    #[test]
    fn zero_capacity_rejects_everything() {
        let mut q: RequestQueue<u8, u32> = RequestQueue::bounded(0);
        assert_eq!(q.push(0, 9), Err(9));
        assert!(q.is_empty());
    }

    #[test]
    fn prune_drops_and_recounts() {
        let mut q: RequestQueue<u8, u32> = RequestQueue::bounded(8);
        for i in 0..6 {
            q.push((i % 2) as u8, i).unwrap();
        }
        let dropped = q.prune(|_, item| item % 3 != 0);
        assert_eq!(dropped, 2); // 0 and 3 removed
        assert_eq!(q.len(), 4);
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            /// The queue drains strictly by descending priority and FIFO
            /// within each priority class, and never exceeds its capacity.
            #[test]
            fn drains_fifo_per_priority(
                pushes in prop::collection::vec((0u8..4, any::<u32>()), 0..80),
                capacity in 0usize..48,
            ) {
                let mut q: RequestQueue<u8, u32> = RequestQueue::bounded(capacity);
                let mut accepted: Vec<(u8, u32)> = Vec::new();
                for (priority, item) in pushes {
                    match q.push(priority, item) {
                        Ok(()) => accepted.push((priority, item)),
                        Err(rejected) => {
                            prop_assert_eq!(rejected, item);
                            prop_assert_eq!(q.len(), capacity);
                        }
                    }
                    prop_assert!(q.len() <= capacity);
                }

                let mut drained: Vec<(u8, u32)> = Vec::new();
                while let Some(pair) = q.pop() {
                    drained.push(pair);
                }
                prop_assert!(q.is_empty());

                // Expected order: stable sort of the accepted pushes by
                // descending priority (stability = FIFO within a class).
                let mut expected = accepted;
                expected.sort_by_key(|(priority, _)| std::cmp::Reverse(*priority));
                prop_assert_eq!(drained, expected);
            }
        }
    }
}

//! Function configuration.

use servo_simkit::LatencyModel;
use servo_types::{MemoryMb, SimDuration};

/// Configuration of a serverless function deployment.
///
/// The defaults are calibrated against the behaviour the paper reports for
/// AWS Lambda: warm invocation overhead of a few tens of milliseconds, cold
/// starts of a few hundred milliseconds, compute speed proportional to the
/// configured memory, and idle containers reclaimed after minutes.
#[derive(Debug, Clone)]
pub struct FunctionConfig {
    /// Memory allocated to the function; determines the vCPU share.
    pub memory: MemoryMb,
    /// Maximum execution time before the platform kills the invocation.
    pub timeout: SimDuration,
    /// Per-invocation platform and network overhead for a warm container.
    pub warm_overhead: LatencyModel,
    /// Additional latency paid when a new container must be started.
    pub cold_start: LatencyModel,
    /// How long an idle container stays warm before being reclaimed.
    pub idle_timeout: SimDuration,
    /// Maximum number of concurrently running containers (`None` =
    /// effectively unlimited, the platform default).
    pub max_concurrency: Option<usize>,
    /// Fraction of the work that benefits from more than one vCPU. Chunk
    /// generation and SC simulation are mostly single-threaded, so only a
    /// small fraction of extra vCPUs translates into speed-up.
    pub parallel_fraction: f64,
}

impl FunctionConfig {
    /// An AWS-Lambda-like configuration at the given memory size.
    pub fn aws_like(memory: MemoryMb) -> Self {
        // Smaller functions show noticeably more variability (Figure 11 and
        // the cited "Peeking Behind the Curtains" measurements).
        let variability = 0.08 + 0.22 * (320.0 / memory.as_mb() as f64).min(1.0);
        FunctionConfig {
            memory,
            timeout: SimDuration::from_secs(900),
            warm_overhead: LatencyModel::new(18.0, 0.25 + variability)
                .with_outliers(0.002, 120.0, 2.5)
                .with_ceiling(2_000.0),
            cold_start: LatencyModel::new(230.0, 0.35).with_outliers(0.02, 900.0, 2.2),
            idle_timeout: SimDuration::from_secs(120),
            max_concurrency: None,
            parallel_fraction: 0.10,
        }
    }

    /// An Azure-Functions-like configuration. Azure's consumption plan does
    /// not expose a memory knob; compute is roughly equivalent to a 1.5 GB
    /// Lambda, with slightly higher overhead and cold-start variability.
    pub fn azure_like() -> Self {
        let mut config = FunctionConfig::aws_like(MemoryMb::new(1536));
        config.warm_overhead = LatencyModel::new(25.0, 0.35).with_outliers(0.004, 180.0, 2.3);
        config.cold_start = LatencyModel::new(450.0, 0.5).with_outliers(0.03, 1_500.0, 2.0);
        config
    }

    /// The effective compute speed of this function relative to one full
    /// vCPU.
    ///
    /// The vCPU share grows linearly with memory (1 vCPU per 1792 MB).
    /// Work that is mostly single-threaded saturates around one vCPU; the
    /// configured [`parallel_fraction`](Self::parallel_fraction) of the
    /// extra vCPUs still helps, which reproduces the sub-linear scaling of
    /// Figure 11b.
    pub fn compute_speed(&self) -> f64 {
        let vcpus = self.memory.vcpus();
        let serial = vcpus.min(1.0);
        let parallel_bonus = (vcpus - 1.0).max(0.0) * self.parallel_fraction;
        (serial + parallel_bonus).max(0.05)
    }

    /// Latency of executing `work_units` of compute (milliseconds at one
    /// full vCPU) on this function, excluding overheads.
    pub fn compute_duration(&self, work_units: f64) -> SimDuration {
        SimDuration::from_millis_f64(work_units.max(0.0) / self.compute_speed())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compute_speed_increases_with_memory() {
        let sweep: Vec<f64> = MemoryMb::PAPER_SWEEP
            .iter()
            .map(|&m| FunctionConfig::aws_like(m).compute_speed())
            .collect();
        for pair in sweep.windows(2) {
            assert!(pair[1] > pair[0], "speed must increase: {sweep:?}");
        }
    }

    #[test]
    fn compute_duration_matches_paper_shape() {
        // A default-world chunk is ~550 work units (see servo-pcg): the
        // 10240 MB function must finish in under a second, the 320 MB
        // function must need more than 3 seconds (Figure 11a).
        let big = FunctionConfig::aws_like(MemoryMb::new(10240)).compute_duration(550.0);
        let small = FunctionConfig::aws_like(MemoryMb::new(320)).compute_duration(550.0);
        assert!(big.as_millis() < 1_000, "10 GB took {big}");
        assert!(small.as_millis() > 3_000, "320 MB took {small}");
    }

    #[test]
    fn scaling_is_sublinear_in_memory() {
        // Doubling memory beyond one vCPU must give far less than double the
        // speed (Figure 11b).
        let at_2g = FunctionConfig::aws_like(MemoryMb::new(2048)).compute_speed();
        let at_4g = FunctionConfig::aws_like(MemoryMb::new(4096)).compute_speed();
        assert!(at_4g / at_2g < 1.5);
    }

    #[test]
    fn small_functions_are_more_variable() {
        // Variability enters through the warm-overhead sigma; compare the
        // spread indirectly through repeated sampling.
        use servo_simkit::{Distribution, SimRng};
        let small = FunctionConfig::aws_like(MemoryMb::new(320));
        let large = FunctionConfig::aws_like(MemoryMb::new(10240));
        let mut rng1 = SimRng::seed(1);
        let mut rng2 = SimRng::seed(1);
        let spread = |cfg: &FunctionConfig, rng: &mut SimRng| {
            let samples: Vec<f64> = (0..2000)
                .map(|_| cfg.warm_overhead.sample_ms(rng))
                .collect();
            let mean = samples.iter().sum::<f64>() / samples.len() as f64;
            samples.iter().map(|s| (s - mean).abs()).sum::<f64>() / samples.len() as f64
        };
        assert!(spread(&small, &mut rng1) > spread(&large, &mut rng2));
    }

    #[test]
    fn azure_has_higher_cold_start() {
        assert!(
            FunctionConfig::azure_like().cold_start.median_ms()
                > FunctionConfig::aws_like(MemoryMb::new(1536))
                    .cold_start
                    .median_ms()
        );
    }

    #[test]
    fn negative_work_clamps_to_zero() {
        let cfg = FunctionConfig::aws_like(MemoryMb::new(1024));
        assert_eq!(cfg.compute_duration(-10.0), SimDuration::ZERO);
    }
}

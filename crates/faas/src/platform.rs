//! The FaaS platform: container lifecycle, invocation latency, statistics.

use servo_simkit::{Distribution, SimRng};
use servo_types::id::IdAllocator;
use servo_types::{InvocationId, ServoError, SimDuration, SimTime};

use crate::billing::BillingMeter;
use crate::config::FunctionConfig;

/// One container ("execution environment") of the deployed function.
#[derive(Debug, Clone, Copy)]
struct Container {
    /// The instant at which the container finishes its current invocation.
    busy_until: SimTime,
    /// The instant of the last completed (or started) invocation, used to
    /// decide idle reclamation.
    last_used: SimTime,
}

/// The outcome of a single function invocation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Invocation {
    /// Unique identifier of the invocation.
    pub id: InvocationId,
    /// When the request was issued by the caller.
    pub requested_at: SimTime,
    /// When the function's reply reaches the caller.
    pub completed_at: SimTime,
    /// Whether a new container had to be started.
    pub cold_start: bool,
    /// Pure compute time inside the function (what gets billed).
    pub compute: SimDuration,
    /// End-to-end latency observed by the caller.
    pub latency: SimDuration,
}

/// Aggregate statistics of a platform instance.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct PlatformStats {
    /// Total invocations served.
    pub invocations: u64,
    /// Invocations that required a cold start.
    pub cold_starts: u64,
    /// Invocations rejected because the concurrency limit was reached.
    pub rejected: u64,
    /// Largest number of simultaneously busy containers observed.
    pub peak_concurrency: usize,
}

/// A simulated serverless function deployment.
///
/// The platform tracks warm containers, charges cold starts when no warm
/// container is available, reclaims containers idle longer than the
/// configured timeout, and meters billing.
///
/// # Example
///
/// ```
/// use servo_faas::{FaasPlatform, FunctionConfig};
/// use servo_simkit::SimRng;
/// use servo_types::{MemoryMb, SimTime, SimDuration};
///
/// let mut platform = FaasPlatform::new(FunctionConfig::aws_like(MemoryMb::new(1024)), SimRng::seed(1));
/// let first = platform.invoke(SimTime::ZERO, 50.0).unwrap();
/// assert!(first.cold_start);
/// // Invoking again right after completion reuses the warm container.
/// let second = platform.invoke(first.completed_at, 50.0).unwrap();
/// assert!(!second.cold_start);
/// ```
#[derive(Debug, Clone)]
pub struct FaasPlatform {
    config: FunctionConfig,
    rng: SimRng,
    containers: Vec<Container>,
    ids: IdAllocator<InvocationId>,
    billing: BillingMeter,
    stats: PlatformStats,
}

impl FaasPlatform {
    /// Creates a platform for one function deployment.
    pub fn new(config: FunctionConfig, rng: SimRng) -> Self {
        FaasPlatform {
            config,
            rng,
            containers: Vec::new(),
            ids: IdAllocator::new(),
            billing: BillingMeter::new(),
            stats: PlatformStats::default(),
        }
    }

    /// The function configuration.
    pub fn config(&self) -> &FunctionConfig {
        &self.config
    }

    /// The billing meter accumulated so far.
    pub fn billing(&self) -> &BillingMeter {
        &self.billing
    }

    /// Aggregate statistics.
    pub fn stats(&self) -> PlatformStats {
        self.stats
    }

    /// Number of containers currently kept warm at instant `now`.
    pub fn warm_containers(&self, now: SimTime) -> usize {
        self.containers
            .iter()
            .filter(|c| now.saturating_since(c.last_used) <= self.config.idle_timeout)
            .count()
    }

    /// Invokes the function at `now` with `work_units` of compute
    /// (milliseconds at one full vCPU).
    ///
    /// # Errors
    ///
    /// Returns [`ServoError::LimitExceeded`] if the concurrency limit is
    /// reached, and [`ServoError::FunctionFailed`] if the computed execution
    /// time exceeds the function timeout.
    pub fn invoke(&mut self, now: SimTime, work_units: f64) -> Result<Invocation, ServoError> {
        // Reclaim containers idle beyond the timeout.
        let idle_timeout = self.config.idle_timeout;
        self.containers
            .retain(|c| now.saturating_since(c.last_used) <= idle_timeout);

        let busy = self
            .containers
            .iter()
            .filter(|c| c.busy_until > now)
            .count();
        if let Some(limit) = self.config.max_concurrency {
            if busy >= limit {
                self.stats.rejected += 1;
                return Err(ServoError::LimitExceeded {
                    what: format!("function concurrency limit of {limit}"),
                });
            }
        }

        let compute = self.config.compute_duration(work_units);
        if compute > self.config.timeout {
            self.stats.rejected += 1;
            return Err(ServoError::function_failed(format!(
                "execution time {compute} exceeds the {} timeout",
                self.config.timeout
            )));
        }

        // Find a warm, free container; otherwise start a new (cold) one.
        let warm_index = self.containers.iter().position(|c| c.busy_until <= now);
        let (cold_start, container_index) = match warm_index {
            Some(i) => (false, i),
            None => {
                self.containers.push(Container {
                    busy_until: now,
                    last_used: now,
                });
                (true, self.containers.len() - 1)
            }
        };

        let mut latency =
            SimDuration::from_millis_f64(self.config.warm_overhead.sample_ms(&mut self.rng));
        if cold_start {
            latency +=
                SimDuration::from_millis_f64(self.config.cold_start.sample_ms(&mut self.rng));
            self.stats.cold_starts += 1;
        }
        latency += compute;

        let completed_at = now + latency;
        {
            let container = &mut self.containers[container_index];
            container.busy_until = completed_at;
            container.last_used = completed_at;
        }

        self.billing.record(self.config.memory, compute);
        self.stats.invocations += 1;
        let busy_now = self
            .containers
            .iter()
            .filter(|c| c.busy_until > now)
            .count();
        self.stats.peak_concurrency = self.stats.peak_concurrency.max(busy_now);

        Ok(Invocation {
            id: self.ids.next(),
            requested_at: now,
            completed_at,
            cold_start,
            compute,
            latency,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use servo_types::MemoryMb;

    fn platform(memory: u32) -> FaasPlatform {
        FaasPlatform::new(
            FunctionConfig::aws_like(MemoryMb::new(memory)),
            SimRng::seed(42),
        )
    }

    #[test]
    fn first_invocation_is_cold_warm_reuse_after() {
        let mut p = platform(1024);
        let a = p.invoke(SimTime::ZERO, 10.0).unwrap();
        assert!(a.cold_start);
        let b = p.invoke(a.completed_at, 10.0).unwrap();
        assert!(!b.cold_start);
        assert_eq!(p.stats().invocations, 2);
        assert_eq!(p.stats().cold_starts, 1);
        assert!(a.latency > b.latency);
    }

    #[test]
    fn concurrent_invocations_each_get_a_container() {
        let mut p = platform(1024);
        let now = SimTime::ZERO;
        for _ in 0..10 {
            let inv = p.invoke(now, 100.0).unwrap();
            assert!(inv.cold_start, "parallel requests cannot share a container");
        }
        assert_eq!(p.stats().cold_starts, 10);
        assert!(p.stats().peak_concurrency >= 10);
    }

    #[test]
    fn idle_containers_are_reclaimed() {
        let mut p = platform(1024);
        let a = p.invoke(SimTime::ZERO, 10.0).unwrap();
        // Invoke again long after the idle timeout.
        let later = a.completed_at + SimDuration::from_secs(600);
        assert_eq!(p.warm_containers(later), 0);
        let b = p.invoke(later, 10.0).unwrap();
        assert!(b.cold_start);
    }

    #[test]
    fn concurrency_limit_rejects() {
        let mut config = FunctionConfig::aws_like(MemoryMb::new(1024));
        config.max_concurrency = Some(2);
        let mut p = FaasPlatform::new(config, SimRng::seed(1));
        let now = SimTime::ZERO;
        p.invoke(now, 1000.0).unwrap();
        p.invoke(now, 1000.0).unwrap();
        let err = p.invoke(now, 1000.0).unwrap_err();
        assert!(matches!(err, ServoError::LimitExceeded { .. }));
        assert_eq!(p.stats().rejected, 1);
    }

    #[test]
    fn timeout_rejects_oversized_work() {
        let mut config = FunctionConfig::aws_like(MemoryMb::new(1024));
        config.timeout = SimDuration::from_secs(1);
        let mut p = FaasPlatform::new(config, SimRng::seed(1));
        let err = p.invoke(SimTime::ZERO, 1e7).unwrap_err();
        assert!(matches!(err, ServoError::FunctionFailed { .. }));
    }

    #[test]
    fn latency_includes_compute_and_overhead() {
        let mut p = platform(1792); // exactly one vCPU
        let inv = p.invoke(SimTime::ZERO, 500.0).unwrap();
        assert!(inv.compute.as_millis() >= 450 && inv.compute.as_millis() <= 550);
        assert!(inv.latency > inv.compute);
        assert_eq!(inv.completed_at, inv.requested_at + inv.latency);
    }

    #[test]
    fn more_memory_gives_lower_latency() {
        let mut small = platform(320);
        let mut large = platform(10240);
        // Average over several warm invocations.
        let mut t_small = SimTime::ZERO;
        let mut t_large = SimTime::ZERO;
        let mut small_total = 0.0;
        let mut large_total = 0.0;
        for _ in 0..20 {
            let a = small.invoke(t_small, 550.0).unwrap();
            t_small = a.completed_at;
            small_total += a.latency.as_millis_f64();
            let b = large.invoke(t_large, 550.0).unwrap();
            t_large = b.completed_at;
            large_total += b.latency.as_millis_f64();
        }
        assert!(small_total > 3.0 * large_total);
    }

    #[test]
    fn billing_accumulates_per_invocation() {
        let mut p = platform(1024);
        let mut now = SimTime::ZERO;
        for _ in 0..5 {
            now = p.invoke(now, 100.0).unwrap().completed_at;
        }
        assert_eq!(p.billing().invocations(), 5);
        assert!(p.billing().total_cost_usd() > 0.0);
    }

    #[test]
    fn invocation_ids_are_unique() {
        let mut p = platform(1024);
        let a = p.invoke(SimTime::ZERO, 1.0).unwrap();
        let b = p.invoke(SimTime::ZERO, 1.0).unwrap();
        assert_ne!(a.id, b.id);
    }
}

//! The FaaS platform: container lifecycle, invocation latency, statistics.
//!
//! The platform composes a [`FunctionConfig`] (one function's latency and
//! compute model) with a [`PlatformConfig`] (the scheduling friction around
//! it: provisioning delay, keep-alive, scale-down cooldown, container cap,
//! saturation queue). With [`PlatformConfig::frictionless`] — the default —
//! every invocation behaves exactly as it did before the platform model
//! existed: same branch order, same rng draws, same billing. All added
//! randomness (provisioning jitter) comes from a dedicated
//! `"platform-friction"` substream, so friction never perturbs the
//! simulation's own rng streams.

use servo_simkit::{Distribution, SimRng};
use servo_types::id::IdAllocator;
use servo_types::{InvocationId, ServoError, SimDuration, SimTime};

use crate::billing::BillingMeter;
use crate::config::FunctionConfig;
use crate::model::PlatformConfig;
use crate::pool::WarmPool;

/// The outcome of a single function invocation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Invocation {
    /// Unique identifier of the invocation.
    pub id: InvocationId,
    /// When the request was issued by the caller.
    pub requested_at: SimTime,
    /// When the function's reply reaches the caller.
    pub completed_at: SimTime,
    /// Whether a new container had to be started.
    pub cold_start: bool,
    /// Pure compute time inside the function (what gets billed).
    pub compute: SimDuration,
    /// Time spent parked in the saturation queue before a container slot
    /// freed up (zero unless the platform was saturated and queuing is
    /// enabled).
    pub queue_wait: SimDuration,
    /// End-to-end latency observed by the caller.
    pub latency: SimDuration,
}

/// Aggregate statistics of a platform instance.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct PlatformStats {
    /// Total invocations served.
    pub invocations: u64,
    /// Invocations that required a cold start.
    pub cold_starts: u64,
    /// Invocations rejected because the concurrency limit, the container
    /// cap, or the saturation queue capacity was reached.
    pub rejected: u64,
    /// Invocations that waited in the saturation queue.
    pub queued: u64,
    /// Total queue wait accumulated by queued invocations, in milliseconds.
    pub queue_wait_ms: f64,
    /// Largest number of requests simultaneously waiting in the queue.
    pub peak_queue_depth: usize,
    /// Containers provisioned over the platform's lifetime.
    pub provisioned: u64,
    /// Containers reclaimed after exceeding their keep-alive budget.
    pub expired_containers: u64,
    /// Largest number of simultaneously busy containers observed.
    pub peak_concurrency: usize,
}

impl servo_metrics::StatsReport for PlatformStats {
    fn section(&self) -> &'static str {
        "platform"
    }

    fn report(&self) -> Vec<(&'static str, String)> {
        vec![
            ("invocations", self.invocations.to_string()),
            ("cold_starts", self.cold_starts.to_string()),
            ("rejected", self.rejected.to_string()),
            ("queued", self.queued.to_string()),
            ("queue_wait_ms", format!("{:.3}", self.queue_wait_ms)),
            ("peak_queue_depth", self.peak_queue_depth.to_string()),
            ("provisioned", self.provisioned.to_string()),
            ("expired_containers", self.expired_containers.to_string()),
            ("peak_concurrency", self.peak_concurrency.to_string()),
        ]
    }
}

/// Why an invocation could not start immediately.
enum Saturation {
    /// The function's concurrency limit is reached.
    Concurrency(usize),
    /// The platform's container cap is reached.
    ContainerCap(usize),
}

impl Saturation {
    fn describe(&self) -> String {
        match self {
            Saturation::Concurrency(limit) => {
                format!("function concurrency limit of {limit}")
            }
            Saturation::ContainerCap(cap) => format!("container pool cap of {cap}"),
        }
    }
}

/// A simulated serverless function deployment.
///
/// The platform tracks warm containers, charges cold starts when no warm
/// container is available, reclaims containers idle longer than the
/// keep-alive budget, queues requests when saturated (if configured), and
/// meters billing — execution and warm-idle time separately.
///
/// # Example
///
/// ```
/// use servo_faas::{FaasPlatform, FunctionConfig};
/// use servo_simkit::SimRng;
/// use servo_types::{MemoryMb, SimTime, SimDuration};
///
/// let mut platform = FaasPlatform::new(FunctionConfig::aws_like(MemoryMb::new(1024)), SimRng::seed(1));
/// let first = platform.invoke(SimTime::ZERO, 50.0).unwrap();
/// assert!(first.cold_start);
/// // Invoking again right after completion reuses the warm container.
/// let second = platform.invoke(first.completed_at, 50.0).unwrap();
/// assert!(!second.cold_start);
/// ```
#[derive(Debug, Clone)]
pub struct FaasPlatform {
    config: FunctionConfig,
    platform: PlatformConfig,
    rng: SimRng,
    /// Dedicated substream for platform friction (provisioning jitter);
    /// derived from the seed so consuming it never moves `rng`.
    friction_rng: SimRng,
    pool: WarmPool,
    /// Start instants of requests currently waiting in the saturation
    /// queue. Entries whose instant has passed have started executing and
    /// are pruned on the next saturation event.
    waiting: Vec<SimTime>,
    /// Instant of the most recent container provision, for the scale-down
    /// cooldown.
    last_provisioned: Option<SimTime>,
    ids: IdAllocator<InvocationId>,
    billing: BillingMeter,
    stats: PlatformStats,
}

impl FaasPlatform {
    /// Creates a frictionless platform for one function deployment.
    pub fn new(config: FunctionConfig, rng: SimRng) -> Self {
        FaasPlatform::with_platform_config(config, PlatformConfig::frictionless(), rng)
    }

    /// Creates a platform with explicit friction configuration.
    ///
    /// # Example
    ///
    /// ```
    /// use servo_faas::{FaasPlatform, FunctionConfig, PlatformConfig};
    /// use servo_simkit::SimRng;
    /// use servo_types::{MemoryMb, SimDuration, SimTime};
    ///
    /// let platform = PlatformConfig::frictionless()
    ///     .with_keep_alive(SimDuration::from_secs(5))
    ///     .with_provisioning_delay(SimDuration::from_millis(250));
    /// let mut faas = FaasPlatform::with_platform_config(
    ///     FunctionConfig::aws_like(MemoryMb::new(1024)),
    ///     platform,
    ///     SimRng::seed(1),
    /// );
    /// let inv = faas.invoke(SimTime::ZERO, 10.0).unwrap();
    /// assert!(inv.cold_start);
    /// assert!(inv.latency >= SimDuration::from_millis(250));
    /// ```
    pub fn with_platform_config(
        config: FunctionConfig,
        platform: PlatformConfig,
        rng: SimRng,
    ) -> Self {
        let friction_rng = rng.substream("platform-friction");
        FaasPlatform {
            pool: WarmPool::new(platform.max_containers),
            config,
            platform,
            rng,
            friction_rng,
            waiting: Vec::new(),
            last_provisioned: None,
            ids: IdAllocator::new(),
            billing: BillingMeter::new(),
            stats: PlatformStats::default(),
        }
    }

    /// The function configuration.
    pub fn config(&self) -> &FunctionConfig {
        &self.config
    }

    /// The platform friction configuration.
    pub fn platform_config(&self) -> &PlatformConfig {
        &self.platform
    }

    /// The billing meter accumulated so far.
    pub fn billing(&self) -> &BillingMeter {
        &self.billing
    }

    /// The billing meter as it would read at `now`, with the warm-idle time
    /// accrued by currently-idle containers added in. Non-mutating: use
    /// this to snapshot keep-alive cost at the end of a run.
    pub fn billing_at(&self, now: SimTime) -> BillingMeter {
        let keep_alive = self.platform.effective_keep_alive(self.config.idle_timeout);
        let mut meter = self.billing.clone();
        for c in self.pool.containers() {
            if c.busy_until <= now {
                let idle = now.saturating_since(c.last_used);
                meter.record_idle(self.config.memory, idle.min(keep_alive));
            }
        }
        meter
    }

    /// Aggregate statistics.
    pub fn stats(&self) -> PlatformStats {
        self.stats
    }

    /// Number of containers currently kept warm at instant `now`.
    pub fn warm_containers(&self, now: SimTime) -> usize {
        let keep_alive = self.platform.effective_keep_alive(self.config.idle_timeout);
        self.pool.warm(now, keep_alive)
    }

    /// Total containers in the pool (any state).
    pub fn pool_size(&self) -> usize {
        self.pool.len()
    }

    /// Requests still waiting in the saturation queue at `now`.
    pub fn queue_depth(&self, now: SimTime) -> usize {
        self.waiting.iter().filter(|start| **start > now).count()
    }

    /// The provisioning delay of one container start: the fixed delay plus
    /// jitter drawn from the friction substream.
    fn draw_provisioning_delay(&mut self) -> SimDuration {
        let jitter = match &self.platform.provisioning_jitter {
            Some(model) => SimDuration::from_millis_f64(model.sample_ms(&mut self.friction_rng)),
            None => SimDuration::ZERO,
        };
        self.platform.provisioning_delay + jitter
    }

    /// Invokes the function at `now` with `work_units` of compute
    /// (milliseconds at one full vCPU).
    ///
    /// When the platform is saturated and a queue is configured, the
    /// request parks until a container slot frees; the wait surfaces in
    /// [`Invocation::queue_wait`] and [`Invocation::latency`] instead of an
    /// error.
    ///
    /// # Errors
    ///
    /// Returns [`ServoError::LimitExceeded`] if the concurrency limit,
    /// container cap, or saturation queue capacity is reached, and
    /// [`ServoError::FunctionFailed`] if the computed execution time
    /// exceeds the function timeout.
    pub fn invoke(&mut self, now: SimTime, work_units: f64) -> Result<Invocation, ServoError> {
        // Reclaim containers idle beyond the keep-alive budget, unless a
        // recent provision holds the pool (scale-down cooldown).
        let keep_alive = self.platform.effective_keep_alive(self.config.idle_timeout);
        let hold = self.platform.scale_down_cooldown > SimDuration::ZERO
            && self
                .last_provisioned
                .is_some_and(|t| now.saturating_since(t) < self.platform.scale_down_cooldown);
        let expired = self.pool.reclaim_expired(now, keep_alive, hold);
        for _ in &expired {
            // Each reclaimed container sat warm from its last use until the
            // keep-alive budget ran out.
            self.billing.record_idle(self.config.memory, keep_alive);
        }
        self.stats.expired_containers += expired.len() as u64;

        let busy = self.pool.busy(now);
        if let Some(limit) = self.config.max_concurrency {
            if busy >= limit {
                return self.invoke_saturated(now, work_units, Saturation::Concurrency(limit));
            }
        }

        let compute = self.config.compute_duration(work_units);
        if compute > self.config.timeout {
            self.stats.rejected += 1;
            return Err(ServoError::function_failed(format!(
                "execution time {compute} exceeds the {} timeout",
                self.config.timeout
            )));
        }

        // Find a warm, free container; otherwise provision a new (cold) one.
        let (cold_start, container_index, provisioning) = match self.pool.first_free_at(now) {
            Some(i) => (false, i, SimDuration::ZERO),
            None => {
                if let Some(cap) = self.pool.cap() {
                    if self.pool.len() >= cap {
                        return self.invoke_saturated(
                            now,
                            work_units,
                            Saturation::ContainerCap(cap),
                        );
                    }
                }
                let delay = self.draw_provisioning_delay();
                let index = self
                    .pool
                    .provision(now, now + delay)
                    .expect("container cap checked above");
                self.last_provisioned = Some(now);
                self.stats.provisioned += 1;
                (true, index, delay)
            }
        };

        let mut latency =
            SimDuration::from_millis_f64(self.config.warm_overhead.sample_ms(&mut self.rng));
        if cold_start {
            latency +=
                SimDuration::from_millis_f64(self.config.cold_start.sample_ms(&mut self.rng));
            latency += provisioning;
            self.stats.cold_starts += 1;
        }
        latency += compute;

        let completed_at = now + latency;
        let reuse_idle = {
            let container = self.pool.get_mut(container_index);
            let idle = if cold_start {
                SimDuration::ZERO
            } else {
                now.saturating_since(container.last_used)
            };
            container.busy_until = completed_at;
            container.last_used = completed_at;
            idle
        };
        if reuse_idle > SimDuration::ZERO {
            // The reused container sat warm from its last use until now.
            self.billing.record_idle(self.config.memory, reuse_idle);
        }

        self.billing.record(self.config.memory, compute);
        self.stats.invocations += 1;
        let busy_now = self.pool.busy(now);
        self.stats.peak_concurrency = self.stats.peak_concurrency.max(busy_now);

        Ok(Invocation {
            id: self.ids.next(),
            requested_at: now,
            completed_at,
            cold_start,
            compute,
            queue_wait: SimDuration::ZERO,
            latency,
        })
    }

    /// Handles an invocation that arrived while the platform was saturated:
    /// reject if no queue is configured (or it is full), otherwise schedule
    /// the request onto the earliest container slot that frees up. The
    /// schedule is virtual — the invocation is returned immediately with
    /// its future start baked into `queue_wait` — which keeps `invoke`
    /// synchronous and the platform deterministic.
    fn invoke_saturated(
        &mut self,
        now: SimTime,
        work_units: f64,
        cause: Saturation,
    ) -> Result<Invocation, ServoError> {
        // Requests whose start instant has passed are executing, not waiting.
        self.waiting.retain(|start| *start > now);

        if self.platform.queue_capacity == 0 {
            self.stats.rejected += 1;
            return Err(ServoError::LimitExceeded {
                what: cause.describe(),
            });
        }
        if self.waiting.len() >= self.platform.queue_capacity {
            self.stats.rejected += 1;
            return Err(ServoError::LimitExceeded {
                what: format!("request queue capacity of {}", self.platform.queue_capacity),
            });
        }

        let compute = self.config.compute_duration(work_units);
        if compute > self.config.timeout {
            self.stats.rejected += 1;
            return Err(ServoError::function_failed(format!(
                "execution time {compute} exceeds the {} timeout",
                self.config.timeout
            )));
        }

        // The request starts once enough busy containers have drained: one
        // for a container-cap saturation, `busy - limit + 1` for a
        // concurrency-limit saturation.
        let mut ends: Vec<SimTime> = self
            .pool
            .containers()
            .iter()
            .filter(|c| c.busy_until > now)
            .map(|c| c.busy_until)
            .collect();
        if ends.is_empty() {
            // A zero-sized pool can never serve the request.
            self.stats.rejected += 1;
            return Err(ServoError::LimitExceeded {
                what: cause.describe(),
            });
        }
        ends.sort_unstable();
        let skip = match cause {
            Saturation::Concurrency(limit) => ends.len().saturating_sub(limit.max(1)),
            Saturation::ContainerCap(_) => 0,
        };
        let start = ends[skip.min(ends.len() - 1)];
        let wait = start.saturating_since(now);

        // At `start` the assigned container is warm: no cold draw.
        let overhead =
            SimDuration::from_millis_f64(self.config.warm_overhead.sample_ms(&mut self.rng));
        let latency = wait + overhead + compute;
        let completed_at = now + latency;

        let index = self
            .pool
            .first_free_at(start)
            .expect("a busy container frees at the scheduled start");
        let reuse_idle = {
            let container = self.pool.get_mut(index);
            let idle = start.saturating_since(container.last_used);
            container.busy_until = completed_at;
            container.last_used = completed_at;
            idle
        };
        if reuse_idle > SimDuration::ZERO {
            self.billing.record_idle(self.config.memory, reuse_idle);
        }

        self.waiting.push(start);
        self.stats.queued += 1;
        self.stats.queue_wait_ms += wait.as_millis_f64();
        self.stats.peak_queue_depth = self.stats.peak_queue_depth.max(self.waiting.len());

        self.billing.record(self.config.memory, compute);
        self.stats.invocations += 1;
        let busy_now = self.pool.busy(now);
        self.stats.peak_concurrency = self.stats.peak_concurrency.max(busy_now);

        Ok(Invocation {
            id: self.ids.next(),
            requested_at: now,
            completed_at,
            cold_start: false,
            compute,
            queue_wait: wait,
            latency,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use servo_simkit::LatencyModel;
    use servo_types::MemoryMb;

    fn platform(memory: u32) -> FaasPlatform {
        FaasPlatform::new(
            FunctionConfig::aws_like(MemoryMb::new(memory)),
            SimRng::seed(42),
        )
    }

    #[test]
    fn first_invocation_is_cold_warm_reuse_after() {
        let mut p = platform(1024);
        let a = p.invoke(SimTime::ZERO, 10.0).unwrap();
        assert!(a.cold_start);
        let b = p.invoke(a.completed_at, 10.0).unwrap();
        assert!(!b.cold_start);
        assert_eq!(p.stats().invocations, 2);
        assert_eq!(p.stats().cold_starts, 1);
        assert!(a.latency > b.latency);
    }

    #[test]
    fn concurrent_invocations_each_get_a_container() {
        let mut p = platform(1024);
        let now = SimTime::ZERO;
        for _ in 0..10 {
            let inv = p.invoke(now, 100.0).unwrap();
            assert!(inv.cold_start, "parallel requests cannot share a container");
        }
        assert_eq!(p.stats().cold_starts, 10);
        assert!(p.stats().peak_concurrency >= 10);
    }

    #[test]
    fn idle_containers_are_reclaimed() {
        let mut p = platform(1024);
        let a = p.invoke(SimTime::ZERO, 10.0).unwrap();
        // Invoke again long after the idle timeout.
        let later = a.completed_at + SimDuration::from_secs(600);
        assert_eq!(p.warm_containers(later), 0);
        let b = p.invoke(later, 10.0).unwrap();
        assert!(b.cold_start);
        assert_eq!(p.stats().expired_containers, 1);
    }

    #[test]
    fn concurrency_limit_rejects() {
        let mut config = FunctionConfig::aws_like(MemoryMb::new(1024));
        config.max_concurrency = Some(2);
        let mut p = FaasPlatform::new(config, SimRng::seed(1));
        let now = SimTime::ZERO;
        p.invoke(now, 1000.0).unwrap();
        p.invoke(now, 1000.0).unwrap();
        let err = p.invoke(now, 1000.0).unwrap_err();
        assert!(matches!(err, ServoError::LimitExceeded { .. }));
        assert_eq!(p.stats().rejected, 1);
    }

    #[test]
    fn timeout_rejects_oversized_work() {
        let mut config = FunctionConfig::aws_like(MemoryMb::new(1024));
        config.timeout = SimDuration::from_secs(1);
        let mut p = FaasPlatform::new(config, SimRng::seed(1));
        let err = p.invoke(SimTime::ZERO, 1e7).unwrap_err();
        assert!(matches!(err, ServoError::FunctionFailed { .. }));
    }

    #[test]
    fn latency_includes_compute_and_overhead() {
        let mut p = platform(1792); // exactly one vCPU
        let inv = p.invoke(SimTime::ZERO, 500.0).unwrap();
        assert!(inv.compute.as_millis() >= 450 && inv.compute.as_millis() <= 550);
        assert!(inv.latency > inv.compute);
        assert_eq!(inv.completed_at, inv.requested_at + inv.latency);
    }

    #[test]
    fn more_memory_gives_lower_latency() {
        let mut small = platform(320);
        let mut large = platform(10240);
        // Average over several warm invocations.
        let mut t_small = SimTime::ZERO;
        let mut t_large = SimTime::ZERO;
        let mut small_total = 0.0;
        let mut large_total = 0.0;
        for _ in 0..20 {
            let a = small.invoke(t_small, 550.0).unwrap();
            t_small = a.completed_at;
            small_total += a.latency.as_millis_f64();
            let b = large.invoke(t_large, 550.0).unwrap();
            t_large = b.completed_at;
            large_total += b.latency.as_millis_f64();
        }
        assert!(small_total > 3.0 * large_total);
    }

    #[test]
    fn billing_accumulates_per_invocation() {
        let mut p = platform(1024);
        let mut now = SimTime::ZERO;
        for _ in 0..5 {
            now = p.invoke(now, 100.0).unwrap().completed_at;
        }
        assert_eq!(p.billing().invocations(), 5);
        assert!(p.billing().total_cost_usd() > 0.0);
    }

    #[test]
    fn invocation_ids_are_unique() {
        let mut p = platform(1024);
        let a = p.invoke(SimTime::ZERO, 1.0).unwrap();
        let b = p.invoke(SimTime::ZERO, 1.0).unwrap();
        assert_ne!(a.id, b.id);
    }

    // ----- platform-model behaviour -----

    fn with_platform(memory: u32, platform: PlatformConfig) -> FaasPlatform {
        FaasPlatform::with_platform_config(
            FunctionConfig::aws_like(MemoryMb::new(memory)),
            platform,
            SimRng::seed(42),
        )
    }

    #[test]
    fn frictionless_config_matches_default_platform_exactly() {
        let mut base = platform(1024);
        let mut explicit = with_platform(1024, PlatformConfig::frictionless());
        let mut now = SimTime::ZERO;
        for i in 0..40 {
            let a = base.invoke(now, 50.0 + i as f64).unwrap();
            let b = explicit.invoke(now, 50.0 + i as f64).unwrap();
            assert_eq!(a, b);
            // Alternate warm reuse and parallel cold bursts.
            now = if i % 3 == 0 { a.completed_at } else { now };
        }
        assert_eq!(base.stats(), explicit.stats());
        assert_eq!(base.billing(), explicit.billing());
    }

    #[test]
    fn provisioning_delay_adds_to_cold_latency_only() {
        let friction =
            PlatformConfig::frictionless().with_provisioning_delay(SimDuration::from_millis(400));
        let mut base = platform(1024);
        let mut slow = with_platform(1024, friction);
        // Cold invocation: the provisioning delay is the exact difference —
        // every rng draw is shared because friction adds no draws.
        let a = base.invoke(SimTime::ZERO, 10.0).unwrap();
        let b = slow.invoke(SimTime::ZERO, 10.0).unwrap();
        assert!(a.cold_start && b.cold_start);
        assert_eq!(b.latency, a.latency + SimDuration::from_millis(400));
        // Warm invocations are unaffected.
        let t = b.completed_at;
        let a2 = base.invoke(t, 10.0).unwrap();
        let b2 = slow.invoke(t, 10.0).unwrap();
        assert!(!a2.cold_start && !b2.cold_start);
        assert_eq!(a2.latency, b2.latency);
    }

    #[test]
    fn provisioning_jitter_draws_from_friction_substream() {
        // Sigma-zero jitter is a constant: latencies shift by exactly the
        // jitter, proving the main rng stream is untouched by the extra
        // friction draw.
        let friction =
            PlatformConfig::frictionless().with_provisioning_jitter(LatencyModel::new(100.0, 0.0));
        let mut base = platform(1024);
        let mut jittered = with_platform(1024, friction);
        for i in 0..5 {
            let now = SimTime::from_secs(i * 600); // always cold
            let a = base.invoke(now, 10.0).unwrap();
            let b = jittered.invoke(now, 10.0).unwrap();
            assert_eq!(b.latency, a.latency + SimDuration::from_millis(100));
        }
    }

    #[test]
    fn keep_alive_budget_controls_expiry() {
        let short = PlatformConfig::frictionless().with_keep_alive(SimDuration::from_secs(1));
        let mut p = with_platform(1024, short);
        let a = p.invoke(SimTime::ZERO, 10.0).unwrap();
        // Within the budget: warm.
        let b = p
            .invoke(a.completed_at + SimDuration::from_millis(900), 10.0)
            .unwrap();
        assert!(!b.cold_start);
        // Beyond the budget: the container expired, and its idle time was
        // charged to the warm-idle meter.
        let c = p
            .invoke(b.completed_at + SimDuration::from_secs(2), 10.0)
            .unwrap();
        assert!(c.cold_start);
        assert_eq!(p.stats().expired_containers, 1);
        assert!(p.billing().warm_idle_gb_seconds() > 0.0);
    }

    #[test]
    fn scale_down_cooldown_holds_idle_containers() {
        let keep = SimDuration::from_secs(1);
        let eager = PlatformConfig::frictionless().with_keep_alive(keep);
        let held = eager.with_scale_down_cooldown(SimDuration::from_secs(60));
        let mut without = with_platform(1024, eager);
        let mut with_hold = with_platform(1024, held);
        let a = without.invoke(SimTime::ZERO, 10.0).unwrap();
        let b = with_hold.invoke(SimTime::ZERO, 10.0).unwrap();
        // Five seconds idle: past keep-alive, inside the cooldown.
        let later = a.completed_at.max(b.completed_at) + SimDuration::from_secs(5);
        assert!(without.invoke(later, 10.0).unwrap().cold_start);
        assert!(!with_hold.invoke(later, 10.0).unwrap().cold_start);
    }

    #[test]
    fn saturation_queue_surfaces_wait_fifo() {
        let mut config = FunctionConfig::aws_like(MemoryMb::new(1024));
        config.max_concurrency = Some(1);
        let queued = PlatformConfig::frictionless().with_queue_capacity(2);
        let mut p = FaasPlatform::with_platform_config(config, queued, SimRng::seed(1));
        let now = SimTime::ZERO;
        let first = p.invoke(now, 2_000.0).unwrap();
        assert_eq!(first.queue_wait, SimDuration::ZERO);
        // Saturated: the next two requests park instead of being rejected.
        let second = p.invoke(now, 2_000.0).unwrap();
        assert!(second.queue_wait >= first.completed_at.saturating_since(now));
        assert!(!second.cold_start);
        let third = p.invoke(now, 2_000.0).unwrap();
        assert!(third.queue_wait >= second.queue_wait, "queue drains FIFO");
        assert!(third.completed_at > second.completed_at);
        // Queue full: the fourth is rejected.
        let err = p.invoke(now, 2_000.0).unwrap_err();
        assert!(matches!(err, ServoError::LimitExceeded { .. }));
        let stats = p.stats();
        assert_eq!(stats.queued, 2);
        assert_eq!(stats.rejected, 1);
        assert_eq!(stats.peak_queue_depth, 2);
        assert!(stats.queue_wait_ms > 0.0);
        // Once the schedule drains, the queue is empty again.
        assert_eq!(p.queue_depth(third.completed_at), 0);
    }

    #[test]
    fn container_cap_queues_instead_of_growing() {
        let capped = PlatformConfig::frictionless()
            .with_max_containers(1)
            .with_queue_capacity(8);
        let mut p = with_platform(1024, capped);
        let now = SimTime::ZERO;
        let first = p.invoke(now, 1_000.0).unwrap();
        assert!(first.cold_start);
        let second = p.invoke(now, 1_000.0).unwrap();
        assert!(!second.cold_start, "queued requests reuse the pool");
        assert!(second.queue_wait > SimDuration::ZERO);
        assert_eq!(p.pool_size(), 1);
        assert_eq!(p.stats().queued, 1);
    }

    #[test]
    fn container_cap_without_queue_rejects() {
        let capped = PlatformConfig::frictionless().with_max_containers(1);
        let mut p = with_platform(1024, capped);
        let now = SimTime::ZERO;
        p.invoke(now, 1_000.0).unwrap();
        let err = p.invoke(now, 1_000.0).unwrap_err();
        assert!(matches!(err, ServoError::LimitExceeded { .. }));
        assert_eq!(p.stats().rejected, 1);
    }

    #[test]
    fn billing_at_accrues_live_idle_time() {
        let mut p = with_platform(1024, PlatformConfig::frictionless());
        let a = p.invoke(SimTime::ZERO, 10.0).unwrap();
        let snapshot = p.billing_at(a.completed_at + SimDuration::from_secs(10));
        assert!(snapshot.warm_idle_gb_seconds() > 9.0 * 1.0 * (1024.0 / 1024.0) / 1.01);
        // The live meter itself is untouched.
        assert_eq!(p.billing().warm_idle_gb_seconds(), 0.0);
        // Accrual is capped at the keep-alive budget.
        let far = p.billing_at(a.completed_at + SimDuration::from_secs(100_000));
        let keep_alive = p.config().idle_timeout.as_secs_f64();
        assert!(far.warm_idle_gb_seconds() <= keep_alive * 1.0 + 1e-9);
    }
}

//! Avatars and the events their actions generate on the server.

use servo_types::{BlockPos, BlocksPerSecond, PlayerId, SimDuration};

/// A server-side event caused by a player action, which the game server must
/// process during its tick (Table II of the paper).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PlayerEvent {
    /// The player placed a block near their avatar.
    BlockPlaced(BlockPos),
    /// The player broke a block near their avatar.
    BlockBroken(BlockPos),
    /// The player sent a chat message to all other players.
    ChatMessage,
    /// The player changed their selected inventory item.
    InventoryChanged,
}

/// A player's avatar: a position in the horizontal plane plus bookkeeping
/// for movement.
#[derive(Debug, Clone, PartialEq)]
pub struct Avatar {
    /// The owning player.
    pub id: PlayerId,
    /// Continuous east-west position in blocks.
    pub x: f64,
    /// Continuous north-south position in blocks.
    pub z: f64,
    /// The position the avatar spawned at.
    spawn: (f64, f64),
    /// Total horizontal distance travelled, in blocks.
    distance_travelled: f64,
}

impl Avatar {
    /// Creates an avatar at the given spawn position.
    pub fn new(id: PlayerId, spawn_x: f64, spawn_z: f64) -> Self {
        Avatar {
            id,
            x: spawn_x,
            z: spawn_z,
            spawn: (spawn_x, spawn_z),
            distance_travelled: 0.0,
        }
    }

    /// The avatar's block position (the block containing it), at ground
    /// level `y = 4` which is where the flat experiment worlds place the
    /// surface.
    pub fn block_pos(&self) -> BlockPos {
        BlockPos::new(self.x.floor() as i32, 4, self.z.floor() as i32)
    }

    /// The avatar's spawn position.
    pub fn spawn(&self) -> (f64, f64) {
        self.spawn
    }

    /// Total horizontal distance travelled since spawning.
    pub fn distance_travelled(&self) -> f64 {
        self.distance_travelled
    }

    /// Distance from the spawn position.
    pub fn distance_from_spawn(&self) -> f64 {
        let dx = self.x - self.spawn.0;
        let dz = self.z - self.spawn.1;
        (dx * dx + dz * dz).sqrt()
    }

    /// Moves the avatar towards `(tx, tz)` at `speed` for `dt`, stopping at
    /// the target if it is reached. Returns the distance actually moved.
    pub fn move_towards(
        &mut self,
        tx: f64,
        tz: f64,
        speed: BlocksPerSecond,
        dt: SimDuration,
    ) -> f64 {
        let budget = speed.value().max(0.0) * dt.as_secs_f64();
        let dx = tx - self.x;
        let dz = tz - self.z;
        let distance = (dx * dx + dz * dz).sqrt();
        if distance <= f64::EPSILON {
            return 0.0;
        }
        let step = budget.min(distance);
        self.x += dx / distance * step;
        self.z += dz / distance * step;
        self.distance_travelled += step;
        step
    }

    /// Moves the avatar along a fixed heading (radians) at `speed` for `dt`.
    /// Returns the distance moved.
    pub fn move_along(&mut self, heading: f64, speed: BlocksPerSecond, dt: SimDuration) -> f64 {
        let step = speed.value().max(0.0) * dt.as_secs_f64();
        self.x += heading.cos() * step;
        self.z += heading.sin() * step;
        self.distance_travelled += step;
        step
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn move_towards_stops_at_target() {
        let mut a = Avatar::new(PlayerId::new(0), 0.0, 0.0);
        let moved = a.move_towards(
            3.0,
            4.0,
            BlocksPerSecond::new(100.0),
            SimDuration::from_secs(1),
        );
        assert!((moved - 5.0).abs() < 1e-9);
        assert!((a.x - 3.0).abs() < 1e-9 && (a.z - 4.0).abs() < 1e-9);
        // Already there: no movement.
        assert_eq!(
            a.move_towards(
                3.0,
                4.0,
                BlocksPerSecond::new(1.0),
                SimDuration::from_secs(1)
            ),
            0.0
        );
    }

    #[test]
    fn move_towards_is_limited_by_speed() {
        let mut a = Avatar::new(PlayerId::new(0), 0.0, 0.0);
        let moved = a.move_towards(
            100.0,
            0.0,
            BlocksPerSecond::new(2.0),
            SimDuration::from_millis(500),
        );
        assert!((moved - 1.0).abs() < 1e-9);
        assert!((a.x - 1.0).abs() < 1e-9);
    }

    #[test]
    fn move_along_accumulates_distance() {
        let mut a = Avatar::new(PlayerId::new(1), 10.0, 10.0);
        for _ in 0..20 {
            a.move_along(0.0, BlocksPerSecond::new(3.0), SimDuration::from_millis(50));
        }
        assert!((a.distance_travelled() - 3.0).abs() < 1e-9);
        assert!((a.x - 13.0).abs() < 1e-9);
        assert!((a.distance_from_spawn() - 3.0).abs() < 1e-9);
    }

    #[test]
    fn block_pos_floors_continuous_position() {
        let mut a = Avatar::new(PlayerId::new(2), -0.5, 15.9);
        assert_eq!(a.block_pos(), BlockPos::new(-1, 4, 15));
        a.move_along(
            std::f64::consts::PI,
            BlocksPerSecond::new(1.0),
            SimDuration::from_secs(1),
        );
        assert_eq!(a.block_pos(), BlockPos::new(-2, 4, 15));
    }

    #[test]
    fn negative_speed_is_clamped() {
        let mut a = Avatar::new(PlayerId::new(3), 0.0, 0.0);
        assert_eq!(
            a.move_along(0.0, BlocksPerSecond::new(-5.0), SimDuration::from_secs(1)),
            0.0
        );
    }
}

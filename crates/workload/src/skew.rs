//! Deterministic key-skew generators for access-pattern workloads.
//!
//! Concurrent-map and world-shard benchmarks are only meaningful when the
//! key distribution is controlled: uniform access spreads contention
//! evenly, while real player populations cluster around spawn points and
//! points of interest — a heavy-tailed (zipfian) distribution where a few
//! chunks absorb most of the traffic (the hotspot phenomenon the paper's
//! zoned-partitioning design targets). [`KeySkew`] turns a
//! [`SimRng`] sub-stream into a reproducible stream
//! of key indices under either distribution, so a backend × skew benchmark
//! matrix can replay byte-identical access sequences across backends.
//!
//! The zipfian sampler precomputes the cumulative distribution over the
//! key universe once (`O(n)` setup, `O(log n)` per sample by binary
//! search), which keeps sampling allocation-free and bias-free — no
//! rejection loop whose iteration count would depend on the distribution
//! parameter and desynchronize the random stream between runs.
//!
//! # Example
//!
//! ```
//! use servo_simkit::SimRng;
//! use servo_workload::KeySkew;
//!
//! let rng = SimRng::seed(7).substream("bench-keys");
//! let mut hot = KeySkew::zipf(256, 1.1, rng.clone());
//! let mut uniform = KeySkew::uniform(256, rng);
//! let a: Vec<usize> = (0..8).map(|_| hot.sample()).collect();
//! let b: Vec<usize> = (0..8).map(|_| uniform.sample()).collect();
//! assert!(a.iter().all(|&k| k < 256));
//! assert!(b.iter().all(|&k| k < 256));
//! ```

use servo_simkit::SimRng;

/// The key distribution a [`KeySkew`] samples from.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SkewKind {
    /// Every key equally likely.
    Uniform,
    /// Zipfian with the given exponent: key rank `k` (1-based) has weight
    /// `1 / k^exponent`. Exponent `0.0` degenerates to uniform; `~1.0` is
    /// the classic web/player-population skew.
    Zipf {
        /// The distribution exponent (`s` in `1 / k^s`).
        exponent: f64,
    },
}

impl SkewKind {
    /// A short stable label for benchmark output ("uniform", "zipf1.1").
    pub fn label(&self) -> String {
        match self {
            SkewKind::Uniform => "uniform".to_string(),
            SkewKind::Zipf { exponent } => format!("zipf{exponent}"),
        }
    }
}

/// A deterministic sampler of key indices in `0..keys` under a configured
/// [`SkewKind`]. Feed it a dedicated
/// [`SimRng::substream`](servo_simkit::SimRng::substream) so consuming
/// samples here never perturbs any other component's random sequence.
#[derive(Debug, Clone)]
pub struct KeySkew {
    kind: SkewKind,
    keys: usize,
    /// Cumulative probability up to each rank, normalised to end at 1.0.
    /// Empty for the uniform distribution (sampled directly).
    cdf: Vec<f64>,
    rng: SimRng,
}

impl KeySkew {
    /// A uniform sampler over `0..keys` (`keys` is clamped to at least 1).
    pub fn uniform(keys: usize, rng: SimRng) -> Self {
        KeySkew {
            kind: SkewKind::Uniform,
            keys: keys.max(1),
            cdf: Vec::new(),
            rng,
        }
    }

    /// A zipfian sampler over `0..keys` with the given exponent. Rank `r`
    /// (1-based) receives probability proportional to `1 / r^exponent`;
    /// index `0` is the hottest key.
    pub fn zipf(keys: usize, exponent: f64, rng: SimRng) -> Self {
        let keys = keys.max(1);
        let exponent = exponent.max(0.0);
        let mut cdf = Vec::with_capacity(keys);
        let mut total = 0.0f64;
        for rank in 1..=keys {
            total += 1.0 / (rank as f64).powf(exponent);
            cdf.push(total);
        }
        for value in &mut cdf {
            *value /= total;
        }
        KeySkew {
            kind: SkewKind::Zipf { exponent },
            keys,
            cdf,
            rng,
        }
    }

    /// Builds a sampler for `kind` (the matrix-driver convenience).
    pub fn new(kind: SkewKind, keys: usize, rng: SimRng) -> Self {
        match kind {
            SkewKind::Uniform => Self::uniform(keys, rng),
            SkewKind::Zipf { exponent } => Self::zipf(keys, exponent, rng),
        }
    }

    /// The distribution this sampler draws from.
    pub fn kind(&self) -> SkewKind {
        self.kind
    }

    /// The size of the key universe.
    pub fn keys(&self) -> usize {
        self.keys
    }

    /// Draws the next key index in `0..keys`. Exactly one `f64` is consumed
    /// from the random stream per call, for every distribution, so swapping
    /// skews never shifts the samples other components observe.
    pub fn sample(&mut self) -> usize {
        let u = self.rng.unit();
        match self.kind {
            SkewKind::Uniform => ((u * self.keys as f64) as usize).min(self.keys - 1),
            SkewKind::Zipf { .. } => self.cdf.partition_point(|&c| c < u).min(self.keys - 1),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> SimRng {
        SimRng::seed(42).substream("skew-test")
    }

    #[test]
    fn samples_stay_in_range() {
        for mut skew in [
            KeySkew::uniform(1, rng()),
            KeySkew::uniform(17, rng()),
            KeySkew::zipf(1, 1.1, rng()),
            KeySkew::zipf(17, 0.99, rng()),
        ] {
            for _ in 0..2000 {
                assert!(skew.sample() < skew.keys());
            }
        }
    }

    #[test]
    fn same_substream_replays_identically() {
        let mut a = KeySkew::zipf(64, 1.1, rng());
        let mut b = KeySkew::zipf(64, 1.1, rng());
        let xs: Vec<usize> = (0..256).map(|_| a.sample()).collect();
        let ys: Vec<usize> = (0..256).map(|_| b.sample()).collect();
        assert_eq!(xs, ys);
    }

    #[test]
    fn zipf_concentrates_on_low_ranks() {
        let mut skew = KeySkew::zipf(1024, 1.1, rng());
        let mut head = 0usize;
        const SAMPLES: usize = 20_000;
        for _ in 0..SAMPLES {
            if skew.sample() < 16 {
                head += 1;
            }
        }
        // Under zipf(1.1) the top 16 of 1024 keys absorb well over a third
        // of the traffic; under uniform they would get ~1.6%.
        assert!(
            head as f64 / SAMPLES as f64 > 0.35,
            "head share {}",
            head as f64 / SAMPLES as f64
        );
    }

    #[test]
    fn zero_exponent_looks_uniform() {
        let mut skew = KeySkew::zipf(64, 0.0, rng());
        let mut counts = vec![0usize; 64];
        for _ in 0..64_000 {
            counts[skew.sample()] += 1;
        }
        let (min, max) = (
            counts.iter().min().copied().unwrap(),
            counts.iter().max().copied().unwrap(),
        );
        // Each key expects 1000 hits; a flat distribution stays well within
        // 3x between the rarest and hottest key.
        assert!(max < min * 3, "min {min} max {max}");
    }

    #[test]
    fn uniform_covers_the_universe() {
        let mut skew = KeySkew::uniform(8, rng());
        let mut seen = std::collections::HashSet::new();
        for _ in 0..1000 {
            seen.insert(skew.sample());
        }
        assert_eq!(seen.len(), 8);
    }

    #[test]
    fn labels_are_stable() {
        assert_eq!(SkewKind::Uniform.label(), "uniform");
        assert_eq!(SkewKind::Zipf { exponent: 1.1 }.label(), "zipf1.1");
    }
}

//! Player workload models.
//!
//! The paper drives its experiments with synthetic player behaviours
//! (Section IV-A and Table II): a bounded-area movement behaviour `A` used
//! for the simulated-construct experiments, straight-line "star" exploration
//! at fixed speed `Sx`, exploration with increasing speed `S_inc` for the
//! terrain-generation QoS experiment, and a randomized behaviour `R` mixing
//! movement, block modification, chat and inventory changes.
//!
//! This crate implements those behaviours, the avatars they steer, and a
//! [`PlayerFleet`] that manages staggered player joins the way the paper's
//! experiments do (a new player every few seconds).
//!
//! # Example
//!
//! ```
//! use servo_workload::{BehaviorKind, PlayerFleet};
//! use servo_simkit::SimRng;
//! use servo_types::{SimDuration, SimTime};
//!
//! let mut fleet = PlayerFleet::new(BehaviorKind::Star { speed: 3.0 }, SimRng::seed(1));
//! fleet.set_join_schedule(5, SimDuration::from_secs(10));
//! fleet.tick(SimTime::from_secs(60), SimDuration::from_millis(50));
//! assert!(fleet.connected_players() > 0);
//! ```

#![warn(missing_docs)]

pub mod avatar;
pub mod behavior;
pub mod border;
pub mod fleet;
pub mod skew;
pub mod zoning;

pub use avatar::{Avatar, PlayerEvent};
pub use behavior::{Behavior, BehaviorKind};
pub use border::seam_offset;
pub use fleet::{Hotspot, PlayerFleet};
pub use skew::{KeySkew, SkewKind};
pub use zoning::{Handoff, ZoneAssignment, ZoneRouter};

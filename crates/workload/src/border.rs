//! Border-heavy construct workload knobs.
//!
//! The multi-server experiments build fleets of constructs that straddle
//! zone seams on purpose (laid out east-west across a chunk border, so the
//! owning zone must exchange their state with the neighbour every
//! simulated tick). This module holds the *placement arithmetic* for such
//! fleets: given a construct's east-west length, [`seam_offset`] computes
//! where to start it inside the western chunk so that the requested side
//! of the seam holds the strict majority of its blocks — the signal an
//! ownership-aware (border-traffic) rebalancing policy keys on.
//!
//! Chunks are 16 blocks wide, so a construct starting `offset` blocks into
//! the western chunk keeps `16 - offset` blocks west of the seam and puts
//! the rest east of it.

/// Blocks per chunk along the east-west axis.
const CHUNK_WIDTH: i32 = 16;

/// The in-chunk start offset that places a construct of east-west
/// `length` across the eastern chunk seam with the strict majority of its
/// blocks on the requested side — tipped as evenly as possible, so the
/// minority side still holds almost half the footprint.
///
/// The result always leaves at least one block on each side of the seam
/// (a construct entirely inside one chunk is not a border construct), so
/// `length` must be at least 2; lengths longer than `2 * (CHUNK_WIDTH-1)`
/// cannot fit a strict majority on one side of a single seam and are
/// placed as far toward the requested side as the chunk allows.
///
/// # Examples
///
/// ```
/// use servo_workload::seam_offset;
///
/// // A 14-block wire: 8 west / 6 east of the seam...
/// assert_eq!(seam_offset(14, true), 8);
/// // ...or 6 west / 8 east.
/// assert_eq!(seam_offset(14, false), 10);
/// ```
///
/// # Panics
///
/// Panics if `length < 2` — such a construct cannot span a seam.
pub fn seam_offset(length: usize, majority_west: bool) -> i32 {
    assert!(
        length >= 2,
        "a construct of length {length} cannot span a seam"
    );
    let length = length as i32;
    // Strict majority on the chosen side, as slim as possible.
    let majority = length / 2 + 1;
    let west = if majority_west {
        majority
    } else {
        length - majority
    };
    // At least one block on each side of the seam, and the western part
    // must fit inside the western chunk.
    let west = west.clamp(
        (length - (CHUNK_WIDTH - 1)).max(1),
        (CHUNK_WIDTH - 1).min(length - 1),
    );
    CHUNK_WIDTH - west
}

#[cfg(test)]
mod tests {
    use super::*;

    fn west_east(length: usize, majority_west: bool) -> (i32, i32) {
        let offset = seam_offset(length, majority_west);
        let west = CHUNK_WIDTH - offset;
        (west, length as i32 - west)
    }

    #[test]
    fn majority_lands_on_the_requested_side() {
        for length in 3..=20usize {
            let (west, east) = west_east(length, true);
            assert!(west >= 1 && east >= 1, "length {length}: {west}/{east}");
            assert!(west > east, "length {length}: west {west} <= east {east}");
            let (west, east) = west_east(length, false);
            assert!(west >= 1 && east >= 1, "length {length}: {west}/{east}");
            assert!(east > west, "length {length}: east {east} <= west {west}");
        }
    }

    #[test]
    fn majorities_are_as_slim_as_possible() {
        // The canonical 14-block wire splits 8/6 either way.
        assert_eq!(west_east(14, true), (8, 6));
        assert_eq!(west_east(14, false), (6, 8));
        // An even split is impossible for odd lengths; the majority side
        // gets the extra block.
        assert_eq!(west_east(9, true), (5, 4));
        assert_eq!(west_east(9, false), (4, 5));
    }

    #[test]
    fn two_block_constructs_straddle_the_seam() {
        assert_eq!(west_east(2, true), (1, 1));
        assert_eq!(west_east(2, false), (1, 1));
    }
}

//! Partitioning a player fleet over the zones of a multi-server cluster.
//!
//! A zoned deployment simulates each avatar on exactly one server: the one
//! owning the terrain under the avatar's feet. The [`ZoneRouter`] performs
//! that assignment every tick — splitting the fleet's positions and events
//! into per-zone batches — and detects *handoffs*: an avatar whose position
//! moved into terrain owned by a different zone must have its session state
//! transferred between the two servers, which costs cross-server messages.
//!
//! The router is deliberately independent of how zones are laid out: the
//! caller supplies a `zone_of: Fn(BlockPos) -> usize` closure (typically
//! `servo_world::ShardMap::zone_of_block`), so the same machinery serves
//! hash-sharded zones, spatial zones, or anything else.

use servo_types::{BlockPos, PlayerId};

use crate::avatar::PlayerEvent;

/// One avatar moving from the terrain of one zone into another's: the
/// session-state transfer a zoned cluster pays for on top of simulation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Handoff {
    /// The player being handed over.
    pub player: PlayerId,
    /// The zone that simulated the avatar last tick.
    pub from: usize,
    /// The zone that simulates the avatar from this tick on.
    pub to: usize,
}

/// The per-zone split of one tick's fleet state.
#[derive(Debug, Clone)]
pub struct ZoneAssignment {
    /// `positions[z]` holds the avatar positions zone `z` simulates this
    /// tick, in fleet (avatar) order. Every fleet position appears in
    /// exactly one zone.
    pub positions: Vec<Vec<BlockPos>>,
    /// `events[z]` holds the player events zone `z` processes this tick, in
    /// arrival order. Block events go to the zone owning the modified
    /// block; positionless events (chat, inventory) go to the zone
    /// simulating the emitting avatar.
    pub events: Vec<Vec<(PlayerId, PlayerEvent)>>,
    /// The avatars that crossed a zone boundary since the previous tick.
    pub handoffs: Vec<Handoff>,
}

impl ZoneAssignment {
    /// Total number of avatar positions assigned across all zones.
    pub fn total_players(&self) -> usize {
        self.positions.iter().map(Vec::len).sum()
    }
}

/// Routes a fleet's positions and events to the zones of a cluster, tick
/// by tick, tracking which zone simulates each avatar so boundary
/// crossings surface as [`Handoff`]s.
///
/// # Example
///
/// ```
/// use servo_workload::ZoneRouter;
/// use servo_types::BlockPos;
///
/// let mut router = ZoneRouter::new(2);
/// // Zone by the sign of x: west is zone 0, east is zone 1.
/// let zone_of = |p: BlockPos| usize::from(p.x >= 0);
/// let a = router.route(&[BlockPos::new(-5, 4, 0)], &[], zone_of);
/// assert_eq!(a.positions[0].len(), 1);
/// assert!(a.handoffs.is_empty()); // first sighting is a join, not a handoff
/// let b = router.route(&[BlockPos::new(3, 4, 0)], &[], zone_of);
/// assert_eq!(b.positions[1].len(), 1);
/// assert_eq!(b.handoffs.len(), 1);
/// ```
#[derive(Debug, Clone)]
pub struct ZoneRouter {
    zones: usize,
    /// The zone that simulated each avatar (by fleet index) last tick;
    /// `None` until the avatar is first seen.
    current_zone: Vec<Option<usize>>,
    handoffs: u64,
}

impl ZoneRouter {
    /// Creates a router for a cluster of `zones` zones (at least one).
    pub fn new(zones: usize) -> Self {
        ZoneRouter {
            zones: zones.max(1),
            current_zone: Vec::new(),
            handoffs: 0,
        }
    }

    /// Number of zones routed to.
    pub fn zones(&self) -> usize {
        self.zones
    }

    /// Lifetime count of handoffs observed.
    pub fn total_handoffs(&self) -> u64 {
        self.handoffs
    }

    /// The zone currently simulating the avatar at fleet index `player`,
    /// if it has been seen.
    pub fn zone_of_player(&self, player: usize) -> Option<usize> {
        self.current_zone.get(player).copied().flatten()
    }

    /// Splits one tick's fleet state into per-zone batches.
    ///
    /// `positions` are the fleet's avatar positions in fleet order (index
    /// `i` belongs to `PlayerId(i)`, the [`crate::PlayerFleet`] invariant);
    /// `events` are this tick's events in arrival order. `zone_of` maps a
    /// block position to its owning zone; out-of-range zones are clamped
    /// into range so a buggy closure cannot lose players.
    pub fn route(
        &mut self,
        positions: &[BlockPos],
        events: &[(PlayerId, PlayerEvent)],
        zone_of: impl Fn(BlockPos) -> usize,
    ) -> ZoneAssignment {
        if self.current_zone.len() < positions.len() {
            self.current_zone.resize(positions.len(), None);
        }
        let mut assignment = ZoneAssignment {
            positions: (0..self.zones).map(|_| Vec::new()).collect(),
            events: (0..self.zones).map(|_| Vec::new()).collect(),
            handoffs: Vec::new(),
        };
        for (index, &pos) in positions.iter().enumerate() {
            let zone = zone_of(pos).min(self.zones - 1);
            if let Some(previous) = self.current_zone[index] {
                if previous != zone {
                    assignment.handoffs.push(Handoff {
                        player: PlayerId::new(index as u64),
                        from: previous,
                        to: zone,
                    });
                    self.handoffs += 1;
                }
            }
            self.current_zone[index] = Some(zone);
            assignment.positions[zone].push(pos);
        }
        for &(player, event) in events {
            let zone = match event {
                PlayerEvent::BlockPlaced(pos) | PlayerEvent::BlockBroken(pos) => {
                    zone_of(pos).min(self.zones - 1)
                }
                PlayerEvent::ChatMessage | PlayerEvent::InventoryChanged => self
                    .current_zone
                    .get(player.raw() as usize)
                    .copied()
                    .flatten()
                    .unwrap_or(0),
            };
            assignment.events[zone].push((player, event));
        }
        assignment
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sign_zone(p: BlockPos) -> usize {
        usize::from(p.x >= 0)
    }

    #[test]
    fn every_position_lands_in_exactly_one_zone() {
        let mut router = ZoneRouter::new(4);
        let positions: Vec<BlockPos> = (0..40).map(|i| BlockPos::new(i * 3 - 60, 4, i)).collect();
        let assignment = router.route(&positions, &[], |p| (p.x.rem_euclid(4)) as usize);
        assert_eq!(assignment.total_players(), positions.len());
    }

    #[test]
    fn first_sighting_is_not_a_handoff() {
        let mut router = ZoneRouter::new(2);
        let a = router.route(&[BlockPos::new(5, 4, 0)], &[], sign_zone);
        assert!(a.handoffs.is_empty());
        assert_eq!(router.total_handoffs(), 0);
        assert_eq!(router.zone_of_player(0), Some(1));
    }

    #[test]
    fn boundary_crossings_produce_handoffs() {
        let mut router = ZoneRouter::new(2);
        router.route(
            &[BlockPos::new(-1, 4, 0), BlockPos::new(1, 4, 0)],
            &[],
            sign_zone,
        );
        let crossed = router.route(
            &[BlockPos::new(2, 4, 0), BlockPos::new(1, 4, 0)],
            &[],
            sign_zone,
        );
        assert_eq!(
            crossed.handoffs,
            vec![Handoff {
                player: PlayerId::new(0),
                from: 0,
                to: 1,
            }]
        );
        assert_eq!(router.total_handoffs(), 1);
        // The crossing avatar is simulated by its new zone only.
        assert_eq!(crossed.positions[0].len(), 0);
        assert_eq!(crossed.positions[1].len(), 2);
    }

    #[test]
    fn events_route_by_block_or_by_avatar_zone() {
        let mut router = ZoneRouter::new(2);
        let positions = [BlockPos::new(-4, 4, 0)];
        let events = [
            (
                PlayerId::new(0),
                PlayerEvent::BlockPlaced(BlockPos::new(9, 4, 0)),
            ),
            (PlayerId::new(0), PlayerEvent::ChatMessage),
        ];
        let assignment = router.route(&positions, &events, sign_zone);
        // The block edit goes to the zone owning the block (east, zone 1)...
        assert_eq!(assignment.events[1], vec![events[0]]);
        // ...while chat follows the avatar (west, zone 0).
        assert_eq!(assignment.events[0], vec![events[1]]);
    }

    #[test]
    fn out_of_range_zones_are_clamped() {
        let mut router = ZoneRouter::new(2);
        let assignment = router.route(&[BlockPos::ORIGIN], &[], |_| 17);
        assert_eq!(assignment.positions[1].len(), 1);
    }

    #[test]
    fn single_zone_routing_is_the_identity() {
        let mut router = ZoneRouter::new(1);
        let positions: Vec<BlockPos> = (0..10).map(|i| BlockPos::new(i, 4, -i)).collect();
        let events = [(PlayerId::new(3), PlayerEvent::InventoryChanged)];
        let assignment = router.route(&positions, &events, |_| 0);
        assert_eq!(assignment.positions[0], positions);
        assert_eq!(assignment.events[0], events);
        assert!(assignment.handoffs.is_empty());
    }
}

//! A fleet of players joining a game instance over time.

use servo_simkit::SimRng;
use servo_types::{consts, BlockPos, BlocksPerSecond, ChunkPos, PlayerId, SimDuration, SimTime};

use crate::avatar::{Avatar, PlayerEvent};
use crate::behavior::{Behavior, BehaviorKind};

/// A scripted load-skew scenario layered over a fleet's base behaviour:
/// the hotspot workload of the zone-rebalancing experiments.
///
/// From `converge_at` every avatar abandons its base behaviour and walks
/// to its assigned hotspot target (`targets[player_index % targets.len()]`),
/// then dwells on a small deterministic ring around it; from `disperse_at`
/// avatars walk home and resume their base behaviour once they reach their
/// spawn point. Pointing all targets at chunks owned by one zone
/// concentrates the whole fleet's simulation load on that zone's server —
/// the imbalance a static `ShardMap` cannot answer and a rebalancing
/// cluster migrates its way out of.
///
/// The scripted phases consume no randomness and depend only on the
/// avatar's id and the virtual time, so a hotspot fleet advances
/// identically through [`PlayerFleet::tick`] and
/// [`PlayerFleet::tick_parallel`], for every thread count.
#[derive(Debug, Clone)]
pub struct Hotspot {
    /// Hotspot centers in world coordinates; avatar `i` converges on
    /// `targets[i % targets.len()]`.
    pub targets: Vec<(f64, f64)>,
    /// When avatars start walking towards their targets.
    pub converge_at: SimTime,
    /// When avatars head home again.
    pub disperse_at: SimTime,
    /// Walking speed during the scripted phases, in blocks per second.
    pub travel_speed: f64,
    /// Radius of the dwell ring around each target, in blocks. Keep it
    /// below half a chunk (8 blocks) so every dweller stays inside the
    /// target's chunk — and therefore its shard.
    pub dwell_radius: f64,
}

impl Hotspot {
    /// The block-space centers of whole-chunk hotspot sites — the target
    /// convention used when players should converge on specific chunks
    /// (and so land inside specific world shards).
    pub fn chunk_centers(sites: &[ChunkPos]) -> Vec<(f64, f64)> {
        let half = consts::CHUNK_SIZE as f64 / 2.0;
        sites
            .iter()
            .map(|site| {
                let base = site.min_block();
                (base.x as f64 + half, base.z as f64 + half)
            })
            .collect()
    }
}

/// A set of synthetic players connected (or connecting) to one game
/// instance.
///
/// Players can either all be present from the start
/// ([`PlayerFleet::connect_all`]) or join on a schedule (a new player every
/// `interval`, as in the paper's Figure 12a where a player joins every ten
/// seconds).
#[derive(Debug, Clone)]
pub struct PlayerFleet {
    kind: BehaviorKind,
    rng: SimRng,
    avatars: Vec<Avatar>,
    behaviors: Vec<Behavior>,
    /// One independent random stream per avatar, used by the parallel tick
    /// path so the generated behaviour is identical for any worker count.
    rngs: Vec<SimRng>,
    /// Total players that will eventually join.
    target_players: usize,
    /// Interval between joins; `None` means all players join immediately.
    join_interval: Option<SimDuration>,
    /// Spawn location of all players.
    spawn: (f64, f64),
    /// Optional scripted hotspot scenario overriding the base behaviour.
    hotspot: Option<Hotspot>,
    /// Per-avatar flag: reached home again after the hotspot dispersed
    /// (base behaviour resumed for good).
    hotspot_returned: Vec<bool>,
}

impl PlayerFleet {
    /// Creates an empty fleet whose players follow `kind`.
    pub fn new(kind: BehaviorKind, rng: SimRng) -> Self {
        PlayerFleet {
            kind,
            rng,
            avatars: Vec::new(),
            behaviors: Vec::new(),
            rngs: Vec::new(),
            target_players: 0,
            join_interval: None,
            spawn: (8.0, 8.0),
            hotspot: None,
            hotspot_returned: Vec::new(),
        }
    }

    /// Installs a scripted [`Hotspot`] scenario over the fleet's base
    /// behaviour (replacing any previous one).
    pub fn set_hotspot(&mut self, hotspot: Hotspot) {
        self.hotspot_returned = vec![false; self.avatars.len()];
        self.hotspot = Some(hotspot);
    }

    /// Advances one avatar through the scripted hotspot phases, returning
    /// `true` when the script controlled the avatar this tick (the base
    /// behaviour is skipped, no randomness is consumed).
    fn hotspot_act(
        hotspot: &Hotspot,
        avatar: &mut Avatar,
        returned: &mut bool,
        now: SimTime,
        dt: SimDuration,
    ) -> bool {
        if hotspot.targets.is_empty() || now < hotspot.converge_at {
            return false;
        }
        let speed = BlocksPerSecond::new(hotspot.travel_speed.max(0.1));
        let index = avatar.id.raw() as usize;
        if now < hotspot.disperse_at {
            *returned = false;
            let (cx, cz) = hotspot.targets[index % hotspot.targets.len()];
            // Deterministic dwell point: a golden-angle ring spreads the
            // avatars over the target chunk without stacking on one block.
            let angle = index as f64 * 2.399_963_229_728_653;
            let radius = hotspot.dwell_radius.max(0.5) * (0.4 + 0.6 * (index % 7) as f64 / 6.0);
            avatar.move_towards(
                cx + angle.cos() * radius,
                cz + angle.sin() * radius,
                speed,
                dt,
            );
            true
        } else if *returned {
            false
        } else {
            let (sx, sz) = avatar.spawn();
            avatar.move_towards(sx, sz, speed, dt);
            let dx = avatar.x - sx;
            let dz = avatar.z - sz;
            if (dx * dx + dz * dz).sqrt() < 1.5 {
                *returned = true;
            }
            true
        }
    }

    /// Sets the spawn location for newly joining players.
    pub fn set_spawn(&mut self, x: f64, z: f64) {
        self.spawn = (x, z);
    }

    /// Connects `count` players immediately.
    pub fn connect_all(&mut self, count: usize) {
        self.target_players = count;
        self.join_interval = None;
        while self.avatars.len() < count {
            self.join_one();
        }
    }

    /// Schedules `count` players to join one every `interval`, starting with
    /// the first player at time zero.
    pub fn set_join_schedule(&mut self, count: usize, interval: SimDuration) {
        self.target_players = count;
        self.join_interval = Some(interval);
    }

    fn join_one(&mut self) {
        let index = self.avatars.len();
        let id = PlayerId::new(index as u64);
        self.avatars
            .push(Avatar::new(id, self.spawn.0, self.spawn.1));
        self.behaviors
            .push(Behavior::new(self.kind, index, self.target_players.max(1)));
        self.rngs
            .push(self.rng.substream_indexed("avatar", index as u64));
        self.hotspot_returned.push(false);
    }

    /// Number of players currently connected.
    pub fn connected_players(&self) -> usize {
        self.avatars.len()
    }

    /// The behaviour kind of this fleet.
    pub fn kind(&self) -> BehaviorKind {
        self.kind
    }

    /// The avatars currently connected.
    pub fn avatars(&self) -> &[Avatar] {
        &self.avatars
    }

    /// Current block positions of all avatars (used for view-distance and
    /// terrain-loading decisions).
    pub fn positions(&self) -> Vec<BlockPos> {
        self.avatars.iter().map(|a| a.block_pos()).collect()
    }

    /// Advances the fleet by one tick ending at `now`: connects any players
    /// whose join time has arrived and lets every connected player act.
    ///
    /// Returns the server-visible events of this tick, tagged by player.
    pub fn tick(&mut self, now: SimTime, dt: SimDuration) -> Vec<(PlayerId, PlayerEvent)> {
        self.process_joins(now);
        let mut events = Vec::new();
        let hotspot = self.hotspot.as_ref();
        for (index, (avatar, behavior)) in self
            .avatars
            .iter_mut()
            .zip(self.behaviors.iter_mut())
            .enumerate()
        {
            if let Some(hotspot) = hotspot {
                if Self::hotspot_act(hotspot, avatar, &mut self.hotspot_returned[index], now, dt) {
                    continue;
                }
            }
            for event in behavior.act(avatar, dt, &mut self.rng) {
                events.push((avatar.id, event));
            }
        }
        events
    }

    /// Advances the fleet by one tick like [`PlayerFleet::tick`], but steps
    /// avatars on up to `threads` scoped worker threads.
    ///
    /// Each avatar acts on its own pre-derived random stream (created at
    /// join time from the fleet seed), so the produced events and movements
    /// are identical for every `threads` value — including `1` — but differ
    /// from the sequential [`PlayerFleet::tick`], which consumes a single
    /// shared stream. Events are returned in avatar order.
    pub fn tick_parallel(
        &mut self,
        now: SimTime,
        dt: SimDuration,
        threads: usize,
    ) -> Vec<(PlayerId, PlayerEvent)> {
        self.process_joins(now);
        let players = self.avatars.len();
        if players == 0 {
            return Vec::new();
        }
        let threads = threads.clamp(1, players);
        let per_worker = players.div_ceil(threads);

        let mut avatar_slices: Vec<&mut [Avatar]> = self.avatars.chunks_mut(per_worker).collect();
        let mut behavior_slices: Vec<&mut [Behavior]> =
            self.behaviors.chunks_mut(per_worker).collect();
        let mut rng_slices: Vec<&mut [SimRng]> = self.rngs.chunks_mut(per_worker).collect();
        let mut returned_slices: Vec<&mut [bool]> =
            self.hotspot_returned.chunks_mut(per_worker).collect();
        let hotspot = self.hotspot.as_ref();

        let mut per_worker_events: Vec<Vec<(PlayerId, PlayerEvent)>> =
            std::thread::scope(|scope| {
                let mut handles = Vec::with_capacity(threads);
                for (((avatars, behaviors), rngs), returned) in avatar_slices
                    .drain(..)
                    .zip(behavior_slices.drain(..))
                    .zip(rng_slices.drain(..))
                    .zip(returned_slices.drain(..))
                {
                    handles.push(scope.spawn(move || {
                        let mut events = Vec::new();
                        for (((avatar, behavior), rng), returned) in avatars
                            .iter_mut()
                            .zip(behaviors.iter_mut())
                            .zip(rngs.iter_mut())
                            .zip(returned.iter_mut())
                        {
                            if let Some(hotspot) = hotspot {
                                if Self::hotspot_act(hotspot, avatar, returned, now, dt) {
                                    continue;
                                }
                            }
                            for event in behavior.act(avatar, dt, rng) {
                                events.push((avatar.id, event));
                            }
                        }
                        events
                    }));
                }
                handles
                    .into_iter()
                    .map(|h| h.join().expect("fleet worker must not panic"))
                    .collect()
            });
        let mut events = Vec::with_capacity(per_worker_events.iter().map(Vec::len).sum());
        for worker_events in &mut per_worker_events {
            events.append(worker_events);
        }
        events
    }

    fn process_joins(&mut self, now: SimTime) {
        if let Some(interval) = self.join_interval {
            let due = if interval.as_micros() == 0 {
                self.target_players
            } else {
                (now.as_micros() / interval.as_micros()) as usize + 1
            };
            while self.avatars.len() < due.min(self.target_players) {
                self.join_one();
            }
        } else {
            while self.avatars.len() < self.target_players {
                self.join_one();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const TICK: SimDuration = SimDuration::from_millis(50);

    #[test]
    fn connect_all_connects_immediately() {
        let mut fleet = PlayerFleet::new(BehaviorKind::Bounded { radius: 20.0 }, SimRng::seed(1));
        fleet.connect_all(25);
        assert_eq!(fleet.connected_players(), 25);
        assert_eq!(fleet.positions().len(), 25);
    }

    #[test]
    fn join_schedule_adds_players_over_time() {
        let mut fleet = PlayerFleet::new(BehaviorKind::Star { speed: 3.0 }, SimRng::seed(1));
        fleet.set_join_schedule(10, SimDuration::from_secs(10));
        fleet.tick(SimTime::ZERO, TICK);
        assert_eq!(fleet.connected_players(), 1);
        fleet.tick(SimTime::from_secs(35), TICK);
        assert_eq!(fleet.connected_players(), 4);
        fleet.tick(SimTime::from_secs(1000), TICK);
        assert_eq!(fleet.connected_players(), 10);
    }

    #[test]
    fn star_fleet_spreads_out_from_spawn() {
        let mut fleet = PlayerFleet::new(BehaviorKind::Star { speed: 8.0 }, SimRng::seed(2));
        fleet.connect_all(8);
        let mut now = SimTime::ZERO;
        for _ in 0..(20 * 30) {
            now += TICK;
            fleet.tick(now, TICK);
        }
        // After 30 s at 8 blocks/s every avatar is ~240 blocks from spawn.
        for avatar in fleet.avatars() {
            assert!(avatar.distance_from_spawn() > 200.0);
        }
        // And they went in different directions.
        let first = &fleet.avatars()[0];
        let any_far_apart = fleet.avatars()[1..]
            .iter()
            .any(|a| ((a.x - first.x).powi(2) + (a.z - first.z).powi(2)).sqrt() > 100.0);
        assert!(any_far_apart);
    }

    #[test]
    fn random_fleet_produces_events() {
        let mut fleet = PlayerFleet::new(BehaviorKind::Random, SimRng::seed(3));
        fleet.connect_all(20);
        let mut events = Vec::new();
        let mut now = SimTime::ZERO;
        for _ in 0..(20 * 60) {
            now += TICK;
            events.extend(fleet.tick(now, TICK));
        }
        assert!(!events.is_empty());
        // Events are tagged with valid player ids.
        assert!(events.iter().all(|(id, _)| id.raw() < 20));
    }

    #[test]
    fn tick_parallel_is_independent_of_thread_count() {
        let build = || {
            let mut fleet = PlayerFleet::new(BehaviorKind::Random, SimRng::seed(11));
            fleet.connect_all(16);
            fleet
        };
        let mut sequential = build();
        let mut two_threads = build();
        let mut eight_threads = build();
        let mut now = SimTime::ZERO;
        for _ in 0..200 {
            now += TICK;
            let e1 = sequential.tick_parallel(now, TICK, 1);
            let e2 = two_threads.tick_parallel(now, TICK, 2);
            let e8 = eight_threads.tick_parallel(now, TICK, 8);
            assert_eq!(e1, e2);
            assert_eq!(e1, e8);
        }
        for ((a, b), c) in sequential
            .avatars()
            .iter()
            .zip(two_threads.avatars())
            .zip(eight_threads.avatars())
        {
            assert_eq!(a, b);
            assert_eq!(a, c);
        }
    }

    #[test]
    fn tick_parallel_handles_joins_and_empty_fleets() {
        let mut fleet = PlayerFleet::new(BehaviorKind::Star { speed: 3.0 }, SimRng::seed(5));
        assert!(fleet.tick_parallel(SimTime::ZERO, TICK, 4).is_empty());
        fleet.set_join_schedule(10, SimDuration::from_secs(10));
        fleet.tick_parallel(SimTime::from_secs(35), TICK, 4);
        assert_eq!(fleet.connected_players(), 4);
        fleet.tick_parallel(SimTime::from_secs(1000), TICK, 32);
        assert_eq!(fleet.connected_players(), 10);
    }

    fn hotspot(targets: Vec<(f64, f64)>) -> Hotspot {
        Hotspot {
            targets,
            converge_at: SimTime::from_secs(2),
            disperse_at: SimTime::from_secs(30),
            travel_speed: 8.0,
            dwell_radius: 4.0,
        }
    }

    #[test]
    fn hotspot_converges_then_disperses() {
        let mut fleet = PlayerFleet::new(BehaviorKind::Bounded { radius: 20.0 }, SimRng::seed(9));
        fleet.connect_all(12);
        fleet.set_hotspot(hotspot(vec![(120.0, 80.0), (-100.0, 40.0)]));
        let mut now = SimTime::ZERO;
        // Before converge_at: ordinary bounded wandering near spawn.
        for _ in 0..20 {
            now += TICK;
            fleet.tick(now, TICK);
        }
        assert!(fleet
            .avatars()
            .iter()
            .all(|a| a.distance_from_spawn() < 25.0));
        // Converge phase: everyone ends up on their target's dwell ring.
        while now < SimTime::from_secs(29) {
            now += TICK;
            fleet.tick(now, TICK);
        }
        for (i, avatar) in fleet.avatars().iter().enumerate() {
            let (tx, tz) = if i % 2 == 0 {
                (120.0, 80.0)
            } else {
                (-100.0, 40.0)
            };
            let distance = ((avatar.x - tx).powi(2) + (avatar.z - tz).powi(2)).sqrt();
            assert!(distance <= 4.5, "avatar {i} is {distance} blocks out");
        }
        // Disperse phase: everyone walks home and resumes base behaviour.
        while now < SimTime::from_secs(70) {
            now += TICK;
            fleet.tick(now, TICK);
        }
        assert!(
            fleet
                .avatars()
                .iter()
                .all(|a| a.distance_from_spawn() < 25.0),
            "avatars never came home"
        );
    }

    #[test]
    fn hotspot_is_identical_across_tick_paths() {
        let build = || {
            let mut fleet =
                PlayerFleet::new(BehaviorKind::Bounded { radius: 20.0 }, SimRng::seed(4));
            fleet.connect_all(10);
            fleet.set_hotspot(hotspot(vec![(96.0, -64.0)]));
            fleet
        };
        let mut sequential = build();
        let mut parallel = build();
        let mut now = SimTime::ZERO;
        for _ in 0..(20 * 40) {
            now += TICK;
            // Scripted phases consume no randomness, so even the
            // sequential shared-stream path matches tick_parallel while
            // the hotspot is in control (from 2 s in).
            if now >= SimTime::from_secs(2) {
                let a = sequential.tick_parallel(now, TICK, 1);
                let b = parallel.tick_parallel(now, TICK, 4);
                assert_eq!(a, b);
            } else {
                sequential.tick_parallel(now, TICK, 1);
                parallel.tick_parallel(now, TICK, 4);
            }
        }
        for (a, b) in sequential.avatars().iter().zip(parallel.avatars()) {
            assert_eq!(a, b);
        }
    }

    #[test]
    fn spawn_can_be_relocated() {
        let mut fleet = PlayerFleet::new(BehaviorKind::Bounded { radius: 5.0 }, SimRng::seed(4));
        fleet.set_spawn(1000.0, -500.0);
        fleet.connect_all(3);
        for avatar in fleet.avatars() {
            assert_eq!(avatar.spawn(), (1000.0, -500.0));
        }
    }
}

//! The player behaviours of the paper's experiment workloads.

use rand::Rng;
use servo_simkit::SimRng;
use servo_types::{BlockPos, BlocksPerSecond, SimDuration};

use crate::avatar::{Avatar, PlayerEvent};

/// Selects which behaviour a fleet of players follows (Section IV-A).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum BehaviorKind {
    /// `A`: players exclusively move, within a bounded area around spawn.
    /// Used for the simulated-construct experiments.
    Bounded {
        /// Radius of the allowed area, in blocks.
        radius: f64,
    },
    /// `Sx`: players move away from spawn in a straight line at `speed`
    /// blocks per second, each in a different direction (star pattern).
    Star {
        /// Movement speed in blocks per second.
        speed: f64,
    },
    /// `S_inc`: star movement whose speed starts at 1 block/s and increases
    /// by 1 block/s every `step_every` of virtual time (200 s in the paper).
    IncreasingStar {
        /// How often the speed increases by one block per second.
        step_every: SimDuration,
    },
    /// `R`: the randomized behaviour of Table II.
    Random,
}

impl BehaviorKind {
    /// The paper's label for this behaviour (`A`, `S3`, `S_inc`, `R`, ...).
    pub fn label(&self) -> String {
        match self {
            BehaviorKind::Bounded { .. } => "A".to_string(),
            BehaviorKind::Star { speed } => format!("S{speed}"),
            BehaviorKind::IncreasingStar { .. } => "Sinc".to_string(),
            BehaviorKind::Random => "R".to_string(),
        }
    }
}

/// Per-player behaviour state machine.
#[derive(Debug, Clone)]
pub struct Behavior {
    kind: BehaviorKind,
    /// Star heading in radians (assigned per player).
    heading: f64,
    /// Current movement target for target-based behaviours.
    target: Option<(f64, f64)>,
    /// Current speed for target-based behaviours.
    speed: BlocksPerSecond,
    /// Virtual time this behaviour has been running.
    elapsed: SimDuration,
    /// Remaining idle time when standing still.
    idle_remaining: SimDuration,
}

impl Behavior {
    /// Creates the behaviour state for the `player_index`-th of
    /// `player_count` players (star behaviours spread players over
    /// directions).
    pub fn new(kind: BehaviorKind, player_index: usize, player_count: usize) -> Self {
        let count = player_count.max(1) as f64;
        let heading = std::f64::consts::TAU * (player_index as f64) / count;
        Behavior {
            kind,
            heading,
            target: None,
            speed: BlocksPerSecond::new(1.0),
            elapsed: SimDuration::ZERO,
            idle_remaining: SimDuration::ZERO,
        }
    }

    /// The behaviour kind.
    pub fn kind(&self) -> BehaviorKind {
        self.kind
    }

    /// Advances the behaviour by one tick: moves `avatar` and returns the
    /// events the server has to process.
    pub fn act(
        &mut self,
        avatar: &mut Avatar,
        dt: SimDuration,
        rng: &mut SimRng,
    ) -> Vec<PlayerEvent> {
        self.elapsed += dt;
        match self.kind {
            BehaviorKind::Bounded { radius } => {
                self.act_towards_random_target(avatar, dt, rng, radius);
                Vec::new()
            }
            BehaviorKind::Star { speed } => {
                avatar.move_along(self.heading, BlocksPerSecond::new(speed), dt);
                Vec::new()
            }
            BehaviorKind::IncreasingStar { step_every } => {
                let steps = if step_every > SimDuration::ZERO {
                    self.elapsed.as_micros() / step_every.as_micros().max(1)
                } else {
                    0
                };
                let speed = 1.0 + steps as f64;
                avatar.move_along(self.heading, BlocksPerSecond::new(speed), dt);
                Vec::new()
            }
            BehaviorKind::Random => self.act_random(avatar, dt, rng),
        }
    }

    /// Movement towards a random target inside `radius` of spawn at a random
    /// speed of 1–8 blocks/s, re-rolling the target when it is reached.
    fn act_towards_random_target(
        &mut self,
        avatar: &mut Avatar,
        dt: SimDuration,
        rng: &mut SimRng,
        radius: f64,
    ) {
        if self.target.is_none() {
            let (sx, sz) = avatar.spawn();
            let angle = rng.gen::<f64>() * std::f64::consts::TAU;
            let r = rng.gen::<f64>().sqrt() * radius.max(1.0);
            self.target = Some((sx + angle.cos() * r, sz + angle.sin() * r));
            self.speed = BlocksPerSecond::new(1.0 + rng.gen::<f64>() * 7.0);
        }
        let (tx, tz) = self.target.expect("target set above");
        avatar.move_towards(tx, tz, self.speed, dt);
        let dx = tx - avatar.x;
        let dz = tz - avatar.z;
        if (dx * dx + dz * dz).sqrt() < 0.25 {
            self.target = None;
        }
    }

    /// The Table II action mix: 40% move, 30% break/place a nearby block,
    /// 20% stand still, 5% chat, 5% inventory change.
    fn act_random(
        &mut self,
        avatar: &mut Avatar,
        dt: SimDuration,
        rng: &mut SimRng,
    ) -> Vec<PlayerEvent> {
        // Finish any pending idle period first.
        if self.idle_remaining > SimDuration::ZERO {
            self.idle_remaining = self.idle_remaining.saturating_sub(dt);
            return Vec::new();
        }
        // Continue an in-progress movement.
        if let Some((tx, tz)) = self.target {
            avatar.move_towards(tx, tz, self.speed, dt);
            let dx = tx - avatar.x;
            let dz = tz - avatar.z;
            if (dx * dx + dz * dz).sqrt() < 0.25 {
                self.target = None;
            }
            return Vec::new();
        }
        // Pick a new action.
        let roll = rng.gen::<f64>();
        if roll < 0.40 {
            // Move to a random destination at 1 to 8 blocks per second.
            let angle = rng.gen::<f64>() * std::f64::consts::TAU;
            let distance = 4.0 + rng.gen::<f64>() * 28.0;
            self.target = Some((
                avatar.x + angle.cos() * distance,
                avatar.z + angle.sin() * distance,
            ));
            self.speed = BlocksPerSecond::new(1.0 + rng.gen::<f64>() * 7.0);
            Vec::new()
        } else if roll < 0.70 {
            // Break or place a nearby block.
            let base = avatar.block_pos();
            let offset = BlockPos::new(
                rng.gen_range(-2..=2),
                rng.gen_range(0..=2),
                rng.gen_range(-2..=2),
            );
            let pos = base + offset;
            if rng.gen::<bool>() {
                vec![PlayerEvent::BlockPlaced(pos)]
            } else {
                vec![PlayerEvent::BlockBroken(pos)]
            }
        } else if roll < 0.90 {
            // Stand still for a short while.
            self.idle_remaining =
                SimDuration::from_millis(500 + (rng.gen::<f64>() * 1500.0) as u64);
            Vec::new()
        } else if roll < 0.95 {
            vec![PlayerEvent::ChatMessage]
        } else {
            vec![PlayerEvent::InventoryChanged]
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use servo_types::PlayerId;

    const TICK: SimDuration = SimDuration::from_millis(50);

    fn run(kind: BehaviorKind, ticks: usize, seed: u64) -> (Avatar, Vec<PlayerEvent>) {
        let mut avatar = Avatar::new(PlayerId::new(0), 0.0, 0.0);
        let mut behavior = Behavior::new(kind, 0, 8);
        let mut rng = SimRng::seed(seed);
        let mut events = Vec::new();
        for _ in 0..ticks {
            events.extend(behavior.act(&mut avatar, TICK, &mut rng));
        }
        (avatar, events)
    }

    #[test]
    fn labels_match_paper_notation() {
        assert_eq!(BehaviorKind::Bounded { radius: 50.0 }.label(), "A");
        assert_eq!(BehaviorKind::Star { speed: 3.0 }.label(), "S3");
        assert_eq!(BehaviorKind::Star { speed: 8.0 }.label(), "S8");
        assert_eq!(
            BehaviorKind::IncreasingStar {
                step_every: SimDuration::from_secs(200)
            }
            .label(),
            "Sinc"
        );
        assert_eq!(BehaviorKind::Random.label(), "R");
    }

    #[test]
    fn star_moves_in_a_straight_line_at_speed() {
        // 20 ticks/s * 60 s at 3 blocks/s = 180 blocks from spawn.
        let (avatar, events) = run(BehaviorKind::Star { speed: 3.0 }, 20 * 60, 1);
        assert!(events.is_empty());
        assert!((avatar.distance_from_spawn() - 180.0).abs() < 1.0);
    }

    #[test]
    fn different_players_head_in_different_directions() {
        let mut a = Avatar::new(PlayerId::new(0), 0.0, 0.0);
        let mut b = Avatar::new(PlayerId::new(1), 0.0, 0.0);
        let mut ba = Behavior::new(BehaviorKind::Star { speed: 5.0 }, 0, 4);
        let mut bb = Behavior::new(BehaviorKind::Star { speed: 5.0 }, 1, 4);
        let mut rng = SimRng::seed(1);
        for _ in 0..100 {
            ba.act(&mut a, TICK, &mut rng);
            bb.act(&mut b, TICK, &mut rng);
        }
        let separation = ((a.x - b.x).powi(2) + (a.z - b.z).powi(2)).sqrt();
        assert!(
            separation > 10.0,
            "players did not spread out: {separation}"
        );
    }

    #[test]
    fn increasing_star_accelerates() {
        let kind = BehaviorKind::IncreasingStar {
            step_every: SimDuration::from_secs(200),
        };
        // Distance in the first 200 s at 1 block/s is ~200 blocks; in the
        // next 200 s at 2 blocks/s it is ~400 blocks.
        let (avatar, _) = run(kind, 20 * 400, 2);
        assert!(
            avatar.distance_from_spawn() > 550.0 && avatar.distance_from_spawn() < 650.0,
            "distance {}",
            avatar.distance_from_spawn()
        );
    }

    #[test]
    fn bounded_behavior_stays_in_area() {
        let (avatar, events) = run(BehaviorKind::Bounded { radius: 30.0 }, 20 * 300, 3);
        assert!(events.is_empty());
        assert!(avatar.distance_from_spawn() <= 31.0);
        // It does move around, though.
        assert!(avatar.distance_travelled() > 50.0);
    }

    #[test]
    fn random_behavior_mixes_actions_roughly_like_table_ii() {
        let (_avatar, events) = run(BehaviorKind::Random, 20 * 600, 4);
        let placed_or_broken = events
            .iter()
            .filter(|e| matches!(e, PlayerEvent::BlockPlaced(_) | PlayerEvent::BlockBroken(_)))
            .count();
        let chats = events
            .iter()
            .filter(|e| matches!(e, PlayerEvent::ChatMessage))
            .count();
        let inventory = events
            .iter()
            .filter(|e| matches!(e, PlayerEvent::InventoryChanged))
            .count();
        assert!(placed_or_broken > 0);
        assert!(chats > 0);
        assert!(inventory > 0);
        // Block modifications are 30% of decisions vs 5% each for chat and
        // inventory: expect them to dominate clearly.
        assert!(placed_or_broken > 2 * chats);
        assert!(placed_or_broken > 2 * inventory);
    }

    #[test]
    fn random_behavior_is_deterministic_per_seed() {
        let (a1, e1) = run(BehaviorKind::Random, 500, 9);
        let (a2, e2) = run(BehaviorKind::Random, 500, 9);
        assert_eq!(e1, e2);
        assert_eq!(a1.x.to_bits(), a2.x.to_bits());
        assert_eq!(a1.z.to_bits(), a2.z.to_bits());
    }
}

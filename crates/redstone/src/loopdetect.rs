//! State-hash loop detection.
//!
//! Servo's cost optimization (Section III-C1): the remote simulation
//! function hashes the construct state after every step; when a previously
//! seen state recurs, the construct has entered a cycle and the function can
//! truncate its reply to a single iteration of the loop plus an index. The
//! server then replays the loop indefinitely without invoking any further
//! functions.

use std::collections::HashMap;

use crate::engine::Construct;
use crate::state::ConstructState;

/// Information about a detected state cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LoopInfo {
    /// The step index (within the returned sequence) at which the cycle
    /// starts.
    pub start: usize,
    /// The cycle length in steps.
    pub length: usize,
}

/// Detects cycles in a stream of state hashes.
///
/// # Example
///
/// ```
/// use servo_redstone::LoopDetector;
///
/// let mut det = LoopDetector::new();
/// assert_eq!(det.observe(10, 0), None);
/// assert_eq!(det.observe(20, 1), None);
/// let looped = det.observe(10, 2).unwrap();
/// assert_eq!(looped.start, 0);
/// assert_eq!(looped.length, 2);
/// ```
#[derive(Debug, Clone, Default)]
pub struct LoopDetector {
    seen: HashMap<u64, usize>,
}

impl LoopDetector {
    /// Creates an empty detector.
    pub fn new() -> Self {
        LoopDetector::default()
    }

    /// Records the hash observed at `step`. Returns cycle information the
    /// first time a previously seen hash recurs.
    pub fn observe(&mut self, hash: u64, step: usize) -> Option<LoopInfo> {
        match self.seen.get(&hash) {
            Some(&first) => Some(LoopInfo {
                start: first,
                length: step - first,
            }),
            None => {
                self.seen.insert(hash, step);
                None
            }
        }
    }

    /// Number of distinct states observed so far.
    pub fn distinct_states(&self) -> usize {
        self.seen.len()
    }
}

/// The result of running the remote simulation function's work loop.
#[derive(Debug, Clone, PartialEq)]
pub struct SimulationOutcome {
    /// The computed speculative states, in step order. When a loop was
    /// detected the sequence is truncated to end at the last state of the
    /// first complete cycle.
    pub states: Vec<ConstructState>,
    /// Cycle information, if the construct entered a state cycle.
    pub loop_info: Option<LoopInfo>,
    /// Number of steps actually simulated (may be fewer than requested when
    /// a loop is found).
    pub simulated_steps: usize,
}

impl SimulationOutcome {
    /// Whether the outcome allows the server to replay states indefinitely
    /// without further function invocations.
    pub fn is_replayable(&self) -> bool {
        self.loop_info.is_some()
    }

    /// The state to apply at `offset` steps after the start of this
    /// sequence, replaying the detected loop if needed. Returns `None` when
    /// no loop was detected and `offset` runs past the computed states.
    pub fn state_at(&self, offset: usize) -> Option<&ConstructState> {
        if offset == 0 {
            return None;
        }
        if offset <= self.states.len() {
            return Some(&self.states[offset - 1]);
        }
        let info = self.loop_info?;
        if info.length == 0 {
            return None;
        }
        // Steps past the end wrap around inside the cycle. `info.start` and
        // the offsets here are in step space (step 0 is the initial state,
        // step `s` is `states[s - 1]`).
        let mut equivalent_step = info.start + (offset - info.start) % info.length;
        if equivalent_step == 0 {
            // The cycle includes the initial state, which is not stored in
            // `states`; step `length` has the same circuit state.
            equivalent_step = info.length;
        }
        self.states.get(equivalent_step - 1)
    }
}

/// Simulates `construct` for up to `max_steps`, hashing every state and
/// truncating as soon as a state cycle is detected.
///
/// This is exactly the work a Servo SC-offload function performs on the FaaS
/// platform; it is exposed here so both the serverless function model and
/// the benchmarks share one implementation.
pub fn simulate_sequence(construct: &mut Construct, max_steps: usize) -> SimulationOutcome {
    let mut detector = LoopDetector::new();
    // Include the starting state so a cycle back to it is detected.
    detector.observe(construct.state().hash(), 0);
    let mut states = Vec::new();
    for i in 1..=max_steps {
        construct.step();
        let state = construct.state().clone();
        let hash = state.hash();
        states.push(state);
        if let Some(info) = detector.observe(hash, i) {
            return SimulationOutcome {
                simulated_steps: states.len(),
                states,
                loop_info: Some(info),
            };
        }
    }
    SimulationOutcome {
        simulated_steps: states.len(),
        states,
        loop_info: None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    #[test]
    fn detector_finds_first_recurrence() {
        let mut det = LoopDetector::new();
        for (i, h) in [1u64, 2, 3, 4].iter().enumerate() {
            assert_eq!(det.observe(*h, i), None);
        }
        let info = det.observe(3, 4).unwrap();
        assert_eq!(info.start, 2);
        assert_eq!(info.length, 2);
        assert_eq!(det.distinct_states(), 4);
    }

    #[test]
    fn clock_simulation_truncates_to_loop() {
        let mut c = Construct::new(generators::clock(4));
        let outcome = simulate_sequence(&mut c, 200);
        assert!(outcome.is_replayable());
        assert!(outcome.simulated_steps < 200);
        let info = outcome.loop_info.unwrap();
        assert!(info.length >= 1);
    }

    #[test]
    fn non_looping_simulation_runs_all_steps() {
        // A wire line reaches a fixed point, which *is* a loop of length 1,
        // so use very few steps to observe a non-looping prefix.
        let mut c = Construct::new(generators::wire_line(10));
        let outcome = simulate_sequence(&mut c, 1);
        assert_eq!(outcome.simulated_steps, 1);
        assert_eq!(outcome.states.len(), 1);
    }

    #[test]
    fn fixed_point_detected_as_length_one_loop() {
        let mut c = Construct::new(generators::wire_line(5));
        let outcome = simulate_sequence(&mut c, 100);
        let info = outcome.loop_info.expect("steady state must be detected");
        assert_eq!(info.length, 1);
        assert!(outcome.simulated_steps < 100);
    }

    #[test]
    fn state_at_replays_loop_indefinitely() {
        let mut c = Construct::new(generators::clock(4));
        let outcome = simulate_sequence(&mut c, 200);
        let info = outcome.loop_info.unwrap();
        // Replay far past the computed sequence and check periodicity.
        let a = outcome.state_at(info.start + 1 + 10 * info.length).unwrap();
        let b = outcome.state_at(info.start + 1).unwrap();
        assert_eq!(a.hash(), b.hash());
        // Offset zero is "no state yet".
        assert!(outcome.state_at(0).is_none());
    }

    #[test]
    fn state_at_without_loop_is_bounded() {
        let outcome = SimulationOutcome {
            states: {
                let mut cc = Construct::new(generators::wire_line(10));
                cc.step_many(5)
            },
            loop_info: None,
            simulated_steps: 5,
        };
        assert!(outcome.state_at(5).is_some());
        assert!(outcome.state_at(6).is_none());
    }

    #[test]
    fn replay_matches_live_simulation() {
        // Replaying through state_at must agree with actually stepping the
        // construct, for any offset.
        let mut offloaded = Construct::new(generators::clock(5));
        let outcome = simulate_sequence(&mut offloaded, 300);
        let mut live = Construct::new(generators::clock(5));
        for offset in 1..100usize {
            live.step();
            let replayed = outcome.state_at(offset).expect("replayable");
            assert_eq!(replayed.hash(), live.state().hash(), "offset {offset}");
        }
    }
}

//! Simulated-construct engine.
//!
//! Simulated constructs (SCs) are the paper's central workload: collections
//! of stateful blocks — power sources, wires, lamps, repeaters, torches —
//! that players wire together to program the virtual world (Section II-A).
//! Every construct must be re-simulated at the game's 20 Hz tick rate, which
//! is what makes MVEs so much more expensive than static virtual worlds.
//!
//! This crate implements the construct engine from scratch:
//!
//! * [`Blueprint`] — the shape of a construct (block kinds and positions);
//! * [`ConstructState`] — the per-block power levels at one tick, with a
//!   stable hash used for loop detection;
//! * [`Construct`] — a blueprint plus its current state, with deterministic
//!   synchronous stepping;
//! * [`generators`] — parameterised construct builders, including the
//!   252- and 484-block constructs evaluated in Section IV-G;
//! * [`LoopDetector`] / [`simulate_sequence`] — the state-hashing loop
//!   detection used by Servo's cost optimization (Section III-C1).
//!
//! # Example
//!
//! ```
//! use servo_redstone::{generators, Construct};
//!
//! let blueprint = generators::clock(4);
//! let mut construct = Construct::new(blueprint);
//! let before = construct.state().clone();
//! construct.step();
//! // A clock oscillates: the state changes from tick to tick.
//! assert_ne!(before.hash(), construct.state().hash());
//! ```

#![warn(missing_docs)]

pub mod blueprint;
pub mod engine;
pub mod generators;
pub mod loopdetect;
pub mod state;

pub use blueprint::{Blueprint, CircuitBlock};
pub use engine::Construct;
pub use loopdetect::{simulate_sequence, LoopDetector, SimulationOutcome};
pub use state::ConstructState;

//! Construct blueprints: block kinds and their positions.

use std::collections::HashMap;

use servo_types::{BlockPos, Direction};
use servo_world::Block;

/// The kind of a stateful block inside a construct.
///
/// These mirror the stateful [`servo_world::Block`] kinds of the
/// world crate, but carry the circuit semantics used by the engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CircuitBlock {
    /// Always emits a full-strength (15) signal.
    PowerSource,
    /// Propagates signal with a decay of one level per block.
    Wire,
    /// Consumes signal; "lit" when receiving any power.
    Lamp,
    /// Re-emits a full-strength signal one tick after being powered.
    Repeater,
    /// Inverter: emits full strength one tick after being *unpowered*.
    Torch,
}

impl CircuitBlock {
    /// The world-block representation of this circuit block.
    pub const fn as_world_block(self) -> Block {
        match self {
            CircuitBlock::PowerSource => Block::PowerSource,
            CircuitBlock::Wire => Block::Wire,
            CircuitBlock::Lamp => Block::Lamp,
            CircuitBlock::Repeater => Block::Repeater,
            CircuitBlock::Torch => Block::Torch,
        }
    }

    /// Builds a circuit block from a stateful world block, or `None` for
    /// passive terrain blocks.
    pub const fn from_world_block(block: Block) -> Option<CircuitBlock> {
        Some(match block {
            Block::PowerSource => CircuitBlock::PowerSource,
            Block::Wire => CircuitBlock::Wire,
            Block::Lamp => CircuitBlock::Lamp,
            Block::Repeater => CircuitBlock::Repeater,
            Block::Torch => CircuitBlock::Torch,
            _ => return None,
        })
    }
}

/// The immutable shape of a simulated construct: which stateful blocks it
/// contains and where they sit relative to each other.
///
/// Adjacency (which blocks feed signal into which) is pre-computed when the
/// blueprint is frozen, so stepping only touches flat arrays.
///
/// # Example
///
/// ```
/// use servo_redstone::{Blueprint, CircuitBlock};
/// use servo_types::BlockPos;
///
/// let mut b = Blueprint::new();
/// b.add(BlockPos::new(0, 0, 0), CircuitBlock::PowerSource);
/// b.add(BlockPos::new(1, 0, 0), CircuitBlock::Wire);
/// b.add(BlockPos::new(2, 0, 0), CircuitBlock::Lamp);
/// assert_eq!(b.len(), 3);
/// assert_eq!(b.neighbors(1), &[0, 2]);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Blueprint {
    kinds: Vec<CircuitBlock>,
    positions: Vec<BlockPos>,
    /// For each block, the indices of adjacent blocks (6-connectivity).
    adjacency: Vec<Vec<usize>>,
    index_by_pos: HashMap<BlockPos, usize>,
}

impl Blueprint {
    /// Creates an empty blueprint.
    pub fn new() -> Self {
        Blueprint::default()
    }

    /// Adds a block at `pos`. If a block already exists at that position its
    /// kind is replaced. Returns the block's index within the construct.
    pub fn add(&mut self, pos: BlockPos, kind: CircuitBlock) -> usize {
        if let Some(&idx) = self.index_by_pos.get(&pos) {
            self.kinds[idx] = kind;
            return idx;
        }
        let idx = self.kinds.len();
        self.kinds.push(kind);
        self.positions.push(pos);
        self.adjacency.push(Vec::new());
        self.index_by_pos.insert(pos, idx);
        // Wire up adjacency with existing neighbours.
        for dir in Direction::ALL {
            let neighbour_pos = pos.offset(dir);
            if let Some(&n) = self.index_by_pos.get(&neighbour_pos) {
                self.adjacency[idx].push(n);
                self.adjacency[n].push(idx);
            }
        }
        self.adjacency[idx].sort_unstable();
        idx
    }

    /// Number of blocks in the construct.
    pub fn len(&self) -> usize {
        self.kinds.len()
    }

    /// Whether the blueprint contains no blocks.
    pub fn is_empty(&self) -> bool {
        self.kinds.is_empty()
    }

    /// The kind of the block at `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    pub fn kind(&self, index: usize) -> CircuitBlock {
        self.kinds[index]
    }

    /// The kinds of all blocks, in index order.
    pub fn kinds(&self) -> &[CircuitBlock] {
        &self.kinds
    }

    /// The position of the block at `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    pub fn position(&self, index: usize) -> BlockPos {
        self.positions[index]
    }

    /// The positions of all blocks, in index order.
    pub fn positions(&self) -> &[BlockPos] {
        &self.positions
    }

    /// The indices of blocks adjacent to the block at `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    pub fn neighbors(&self, index: usize) -> &[usize] {
        &self.adjacency[index]
    }

    /// The index of the block at `pos`, if any.
    pub fn index_of(&self, pos: BlockPos) -> Option<usize> {
        self.index_by_pos.get(&pos).copied()
    }

    /// Translates every block position by `offset`, e.g. to place the
    /// construct somewhere in the world.
    pub fn translated(&self, offset: BlockPos) -> Blueprint {
        let mut out = Blueprint::new();
        for (i, &kind) in self.kinds.iter().enumerate() {
            out.add(self.positions[i] + offset, kind);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn adjacency_is_symmetric() {
        let mut b = Blueprint::new();
        let a = b.add(BlockPos::new(0, 0, 0), CircuitBlock::PowerSource);
        let w = b.add(BlockPos::new(0, 1, 0), CircuitBlock::Wire);
        let far = b.add(BlockPos::new(5, 5, 5), CircuitBlock::Lamp);
        assert_eq!(b.neighbors(a), &[w]);
        assert_eq!(b.neighbors(w), &[a]);
        assert!(b.neighbors(far).is_empty());
    }

    #[test]
    fn duplicate_position_replaces_kind() {
        let mut b = Blueprint::new();
        let idx1 = b.add(BlockPos::ORIGIN, CircuitBlock::Wire);
        let idx2 = b.add(BlockPos::ORIGIN, CircuitBlock::Lamp);
        assert_eq!(idx1, idx2);
        assert_eq!(b.len(), 1);
        assert_eq!(b.kind(idx1), CircuitBlock::Lamp);
    }

    #[test]
    fn index_of_finds_blocks() {
        let mut b = Blueprint::new();
        b.add(BlockPos::new(1, 2, 3), CircuitBlock::Torch);
        assert_eq!(b.index_of(BlockPos::new(1, 2, 3)), Some(0));
        assert_eq!(b.index_of(BlockPos::new(0, 0, 0)), None);
    }

    #[test]
    fn translated_preserves_structure() {
        let mut b = Blueprint::new();
        b.add(BlockPos::new(0, 0, 0), CircuitBlock::PowerSource);
        b.add(BlockPos::new(1, 0, 0), CircuitBlock::Wire);
        let t = b.translated(BlockPos::new(10, 20, 30));
        assert_eq!(t.len(), 2);
        assert_eq!(t.position(0), BlockPos::new(10, 20, 30));
        assert_eq!(t.neighbors(0), &[1]);
    }

    #[test]
    fn circuit_block_world_round_trip() {
        for kind in [
            CircuitBlock::PowerSource,
            CircuitBlock::Wire,
            CircuitBlock::Lamp,
            CircuitBlock::Repeater,
            CircuitBlock::Torch,
        ] {
            assert_eq!(
                CircuitBlock::from_world_block(kind.as_world_block()),
                Some(kind)
            );
        }
        assert_eq!(CircuitBlock::from_world_block(Block::Stone), None);
    }
}

//! Parameterised construct generators.
//!
//! The paper evaluates constructs of varying sizes — notably 252- and
//! 484-block constructs in Section IV-G — and workloads with 0 to 200
//! constructs (Figure 7). These generators build deterministic constructs of
//! any requested size so experiments can sweep construct counts and sizes.

use servo_types::BlockPos;

use crate::blueprint::{Blueprint, CircuitBlock};

/// A straight line: one power source, `wires` wire blocks, one lamp.
///
/// Total size: `wires + 2` blocks.
pub fn wire_line(wires: usize) -> Blueprint {
    let mut b = Blueprint::new();
    b.add(BlockPos::new(0, 0, 0), CircuitBlock::PowerSource);
    for x in 1..=wires as i32 {
        b.add(BlockPos::new(x, 0, 0), CircuitBlock::Wire);
    }
    b.add(BlockPos::new(wires as i32 + 1, 0, 0), CircuitBlock::Lamp);
    b
}

/// An oscillating clock: a torch feeding a loop of `loop_wires` wire blocks
/// back into itself. The construct alternates between two states forever,
/// making it the canonical target for Servo's loop-detection optimization.
///
/// Total size: `loop_wires + 1` blocks (minimum 4).
pub fn clock(loop_wires: usize) -> Blueprint {
    let loop_wires = loop_wires.max(3);
    let mut b = Blueprint::new();
    b.add(BlockPos::new(0, 0, 0), CircuitBlock::Torch);
    // A rectangular wire loop around the torch: go east, then south, then
    // back west and north to close next to the torch.
    let half = (loop_wires / 2 + 1) as i32;
    let mut placed = 0usize;
    let mut x = 1;
    let mut z = 0;
    // East leg.
    while placed < loop_wires && x < half {
        b.add(BlockPos::new(x, 0, z), CircuitBlock::Wire);
        placed += 1;
        x += 1;
    }
    // South leg.
    z = 1;
    x -= 1;
    if placed < loop_wires {
        b.add(BlockPos::new(x, 0, z), CircuitBlock::Wire);
        placed += 1;
    }
    // West leg back towards the torch.
    while placed < loop_wires && x > 0 {
        x -= 1;
        b.add(BlockPos::new(x, 0, z), CircuitBlock::Wire);
        placed += 1;
    }
    b
}

/// A bank of lamps driven by one power source through a wire bus: a simple
/// "lighting rig" construct with mostly static behaviour.
///
/// Total size: `2 * lamps + 1` blocks.
pub fn lamp_bank(lamps: usize) -> Blueprint {
    let mut b = Blueprint::new();
    b.add(BlockPos::new(0, 0, 0), CircuitBlock::PowerSource);
    for i in 0..lamps as i32 {
        b.add(BlockPos::new(i + 1, 0, 0), CircuitBlock::Wire);
        b.add(BlockPos::new(i + 1, 0, 1), CircuitBlock::Lamp);
    }
    b
}

/// A deterministic dense circuit with exactly `block_count` blocks.
///
/// The circuit is laid out on a 16-block-wide grid and mixes power sources,
/// wires, torches, repeaters and lamps in a fixed pattern, so it both
/// carries signal and oscillates (torches close feedback paths). Two calls
/// with the same `block_count` produce identical blueprints.
///
/// This is the generator used for the construct-count sweeps of Figure 7 and
/// the construct-size sweep of Section IV-G.
pub fn dense_circuit(block_count: usize) -> Blueprint {
    let mut b = Blueprint::new();
    let width: i32 = 16;
    let mut placed = 0usize;
    let mut i: i32 = 0;
    while placed < block_count {
        let x = i % width;
        let z = i / width;
        let kind = match (x, z % 4) {
            (0, _) => CircuitBlock::PowerSource,
            (x, 0) if x % 7 == 6 => CircuitBlock::Torch,
            (x, 1) if x % 5 == 4 => CircuitBlock::Repeater,
            (x, 2) if x % 6 == 5 => CircuitBlock::Lamp,
            (x, 3) if x % 9 == 8 => CircuitBlock::Torch,
            _ => CircuitBlock::Wire,
        };
        b.add(BlockPos::new(x, 0, z), kind);
        placed += 1;
        i += 1;
    }
    b
}

/// The small construct evaluated in Section IV-G of the paper: 252 blocks.
pub fn paper_small() -> Blueprint {
    dense_circuit(252)
}

/// The medium construct evaluated in Section IV-G of the paper: 484 blocks.
pub fn paper_medium() -> Blueprint {
    dense_circuit(484)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::Construct;

    #[test]
    fn wire_line_has_expected_size_and_carries_signal() {
        let b = wire_line(10);
        assert_eq!(b.len(), 12);
        let mut c = Construct::new(b);
        c.step();
        // The lamp at the end is lit (10 wires keep the signal alive).
        assert!(c.state().powers().last().unwrap() > &0);
    }

    #[test]
    fn clock_sizes() {
        assert_eq!(clock(3).len(), 4);
        assert_eq!(clock(8).len(), 9);
        // Tiny requests are clamped to a working loop.
        assert!(clock(0).len() >= 4);
    }

    #[test]
    fn clock_oscillates() {
        let mut c = Construct::new(clock(6));
        let states = c.step_many(10);
        let h: Vec<u64> = states.iter().map(|s| s.hash()).collect();
        assert_ne!(h[0], h[1]);
    }

    #[test]
    fn lamp_bank_lights_up() {
        let mut c = Construct::new(lamp_bank(5));
        assert_eq!(c.len(), 11);
        c.step_many(3);
        let lit = c
            .blueprint()
            .kinds()
            .iter()
            .zip(c.state().powers())
            .filter(|(k, p)| **k == CircuitBlock::Lamp && **p > 0)
            .count();
        assert!(lit >= 1);
    }

    #[test]
    fn dense_circuit_has_exact_size() {
        for n in [1, 16, 100, 252, 484, 1000] {
            assert_eq!(dense_circuit(n).len(), n, "size {n}");
        }
    }

    #[test]
    fn dense_circuit_is_deterministic() {
        assert_eq!(dense_circuit(300), dense_circuit(300));
    }

    #[test]
    fn dense_circuit_is_active() {
        // The circuit must actually change state over time (it creates
        // simulation work), not settle immediately.
        let mut c = Construct::new(dense_circuit(252));
        let states = c.step_many(20);
        let distinct: std::collections::HashSet<u64> = states.iter().map(|s| s.hash()).collect();
        assert!(distinct.len() >= 2);
        // And it carries power.
        assert!(states.last().unwrap().powered_blocks() > 0);
    }

    #[test]
    fn paper_constructs_match_reported_sizes() {
        assert_eq!(paper_small().len(), 252);
        assert_eq!(paper_medium().len(), 484);
    }
}

//! Construct state: per-block power levels at one simulation step.

use servo_types::Tick;

/// Maximum signal strength, matching the classic redstone semantics the
/// paper's prototype (Opencraft / Minecraft) implements.
pub const MAX_POWER: u8 = 15;

/// The state of a construct at a single simulation step: one power level per
/// block, plus the step index and the logical timestamp of the last player
/// modification (used to discard stale speculative results, Section III-C).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConstructState {
    /// Power level (0–15) of each block, in blueprint index order.
    powers: Vec<u8>,
    /// The simulation step this state corresponds to.
    step: u64,
    /// Logical timestamp of the last player modification incorporated in
    /// this state.
    modification_stamp: u64,
}

impl ConstructState {
    /// Creates the initial (all-unpowered) state for a construct of
    /// `block_count` blocks.
    pub fn initial(block_count: usize) -> Self {
        ConstructState {
            powers: vec![0; block_count],
            step: 0,
            modification_stamp: 0,
        }
    }

    /// Creates a state from explicit power levels.
    pub fn from_powers(powers: Vec<u8>, step: u64, modification_stamp: u64) -> Self {
        ConstructState {
            powers,
            step,
            modification_stamp,
        }
    }

    /// The power levels, in blueprint index order.
    pub fn powers(&self) -> &[u8] {
        &self.powers
    }

    /// Mutable access to the power levels (used by the engine).
    pub(crate) fn powers_mut(&mut self) -> &mut Vec<u8> {
        &mut self.powers
    }

    /// The simulation step this state corresponds to.
    pub fn step(&self) -> u64 {
        self.step
    }

    /// Sets the simulation step.
    ///
    /// Used by the engine and by Servo's speculative execution unit when it
    /// replays a loop-detected state sequence: the circuit values repeat but
    /// the global step counter must keep advancing.
    pub fn set_step(&mut self, step: u64) {
        self.step = step;
    }

    /// The logical timestamp of the last player modification.
    pub fn modification_stamp(&self) -> u64 {
        self.modification_stamp
    }

    /// Records a player modification at logical timestamp `stamp`.
    pub fn set_modification_stamp(&mut self, stamp: u64) {
        self.modification_stamp = stamp;
    }

    /// Number of blocks in the construct.
    pub fn len(&self) -> usize {
        self.powers.len()
    }

    /// Whether the construct has no blocks.
    pub fn is_empty(&self) -> bool {
        self.powers.is_empty()
    }

    /// Number of blocks currently powered (power level above zero).
    pub fn powered_blocks(&self) -> usize {
        self.powers.iter().filter(|&&p| p > 0).count()
    }

    /// A stable 64-bit hash of the power levels (FNV-1a).
    ///
    /// The hash deliberately ignores the step index and modification stamp:
    /// loop detection compares *circuit states*, not their timestamps
    /// (Section III-C1 of the paper).
    pub fn hash(&self) -> u64 {
        let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
        for &p in &self.powers {
            hash ^= p as u64;
            hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
        }
        hash
    }

    /// The game tick at which this state becomes current, given the tick the
    /// simulation started from.
    pub fn due_tick(&self, start_tick: Tick) -> Tick {
        start_tick.advance(self.step)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn initial_state_is_unpowered() {
        let s = ConstructState::initial(10);
        assert_eq!(s.len(), 10);
        assert_eq!(s.powered_blocks(), 0);
        assert_eq!(s.step(), 0);
        assert_eq!(s.modification_stamp(), 0);
        assert!(!s.is_empty());
    }

    #[test]
    fn hash_depends_only_on_powers() {
        let a = ConstructState::from_powers(vec![1, 2, 3], 0, 0);
        let b = ConstructState::from_powers(vec![1, 2, 3], 99, 7);
        let c = ConstructState::from_powers(vec![1, 2, 4], 0, 0);
        assert_eq!(a.hash(), b.hash());
        assert_ne!(a.hash(), c.hash());
    }

    #[test]
    fn hash_is_order_sensitive() {
        let a = ConstructState::from_powers(vec![1, 0], 0, 0);
        let b = ConstructState::from_powers(vec![0, 1], 0, 0);
        assert_ne!(a.hash(), b.hash());
    }

    #[test]
    fn due_tick_offsets_from_start() {
        let s = ConstructState::from_powers(vec![0], 5, 0);
        assert_eq!(s.due_tick(Tick(100)), Tick(105));
    }

    #[test]
    fn powered_block_count() {
        let s = ConstructState::from_powers(vec![0, 15, 3, 0], 0, 0);
        assert_eq!(s.powered_blocks(), 2);
    }
}

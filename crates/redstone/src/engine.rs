//! The construct simulation engine.

use std::collections::VecDeque;

use servo_types::BlockPos;

use crate::blueprint::{Blueprint, CircuitBlock};
use crate::state::{ConstructState, MAX_POWER};

/// A simulated construct: a blueprint plus its current state.
///
/// The stepping semantics follow the Minecraft-style circuit model the
/// paper's prototype uses:
///
/// * **wires** propagate signal *instantaneously* within a step, losing one
///   level of strength per block, and are recomputed from the emitting
///   blocks every step (so they cannot sustain themselves);
/// * **power sources** always emit full strength;
/// * **repeaters** and **torches** are the sequential elements: their output
///   in step `t+1` depends on their input in step `t` (a repeater re-emits,
///   a torch inverts), which is what makes clocks and other looping
///   constructs possible;
/// * **lamps** light up when they receive any signal.
///
/// Stepping is fully deterministic — the property Servo's replicated
/// speculative execution relies on: the server and the serverless function
/// must compute identical state sequences from the same starting state.
///
/// # Example
///
/// ```
/// use servo_redstone::{Blueprint, CircuitBlock, Construct};
/// use servo_types::BlockPos;
///
/// let mut b = Blueprint::new();
/// b.add(BlockPos::new(0, 0, 0), CircuitBlock::PowerSource);
/// b.add(BlockPos::new(1, 0, 0), CircuitBlock::Wire);
/// b.add(BlockPos::new(2, 0, 0), CircuitBlock::Lamp);
/// let mut c = Construct::new(b);
/// c.step();
/// // Wire propagation is instantaneous: the lamp is lit after one step.
/// assert!(c.state().powers()[2] > 0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Construct {
    blueprint: Blueprint,
    state: ConstructState,
    /// Monotonic counter of player modifications, used as the logical
    /// timestamp included in offload requests (Section III-C).
    modification_counter: u64,
}

impl Construct {
    /// Creates a construct in its initial (unpowered) state.
    pub fn new(blueprint: Blueprint) -> Self {
        let state = ConstructState::initial(blueprint.len());
        Construct {
            blueprint,
            state,
            modification_counter: 0,
        }
    }

    /// Creates a construct from a blueprint and an explicit state.
    ///
    /// This is how the serverless simulation function reconstructs the
    /// construct from the state shipped in the request.
    pub fn with_state(blueprint: Blueprint, state: ConstructState) -> Self {
        let modification_counter = state.modification_stamp();
        Construct {
            blueprint,
            state,
            modification_counter,
        }
    }

    /// The construct's blueprint.
    pub fn blueprint(&self) -> &Blueprint {
        &self.blueprint
    }

    /// The construct's current state.
    pub fn state(&self) -> &ConstructState {
        &self.state
    }

    /// Number of blocks in the construct.
    pub fn len(&self) -> usize {
        self.blueprint.len()
    }

    /// Whether the construct has no blocks.
    pub fn is_empty(&self) -> bool {
        self.blueprint.is_empty()
    }

    /// The logical timestamp of the most recent player modification.
    pub fn modification_stamp(&self) -> u64 {
        self.modification_counter
    }

    /// Advances the construct by one simulation step.
    pub fn step(&mut self) {
        let n = self.blueprint.len();
        let prev = self.state.powers();

        // 1. Output of the emitting (non-wire) blocks, based on the previous
        //    step's state.
        let mut emitted = vec![0u8; n];
        for i in 0..n {
            emitted[i] = match self.blueprint.kind(i) {
                CircuitBlock::PowerSource => MAX_POWER,
                CircuitBlock::Repeater | CircuitBlock::Torch => prev[i],
                CircuitBlock::Wire | CircuitBlock::Lamp => 0,
            };
        }

        // 2. Instantaneous wire propagation: multi-source BFS over wires,
        //    decaying one level per block, keeping the strongest signal.
        let mut wire_power = vec![0u8; n];
        let mut queue: VecDeque<usize> = VecDeque::new();
        for (i, slot) in wire_power.iter_mut().enumerate() {
            if self.blueprint.kind(i) != CircuitBlock::Wire {
                continue;
            }
            let strongest_emitter = self
                .blueprint
                .neighbors(i)
                .iter()
                .map(|&j| emitted[j])
                .max()
                .unwrap_or(0);
            let p = strongest_emitter.saturating_sub(1);
            if p > 0 {
                *slot = p;
                queue.push_back(i);
            }
        }
        while let Some(i) = queue.pop_front() {
            let next_power = wire_power[i].saturating_sub(1);
            if next_power == 0 {
                continue;
            }
            for &j in self.blueprint.neighbors(i) {
                if self.blueprint.kind(j) == CircuitBlock::Wire && wire_power[j] < next_power {
                    wire_power[j] = next_power;
                    queue.push_back(j);
                }
            }
        }

        // 3. Input seen by each block this step: the strongest of adjacent
        //    emitter outputs and adjacent wire power.
        let input = |i: usize| -> u8 {
            self.blueprint
                .neighbors(i)
                .iter()
                .map(|&j| emitted[j].max(wire_power[j]))
                .max()
                .unwrap_or(0)
        };

        // 4. Next state.
        let mut next = vec![0u8; n];
        for i in 0..n {
            next[i] = match self.blueprint.kind(i) {
                CircuitBlock::PowerSource => MAX_POWER,
                CircuitBlock::Wire => wire_power[i],
                CircuitBlock::Lamp => {
                    if input(i) > 0 {
                        MAX_POWER
                    } else {
                        0
                    }
                }
                CircuitBlock::Repeater => {
                    if input(i) > 0 {
                        MAX_POWER
                    } else {
                        0
                    }
                }
                CircuitBlock::Torch => {
                    if input(i) > 0 {
                        0
                    } else {
                        MAX_POWER
                    }
                }
            };
        }

        let step = self.state.step() + 1;
        *self.state.powers_mut() = next;
        self.state.set_step(step);
    }

    /// Advances the construct by `n` steps and returns the state after each
    /// step — the "speculative state sequence" a serverless function returns
    /// to the execution unit.
    pub fn step_many(&mut self, n: usize) -> Vec<ConstructState> {
        let mut states = Vec::with_capacity(n);
        for _ in 0..n {
            self.step();
            states.push(self.state.clone());
        }
        states
    }

    /// Applies a player modification: the block at `pos` (construct-local
    /// position) is replaced with `kind`, or neutralised if `kind` is `None`
    /// (the block becomes a dead wire).
    ///
    /// Every modification bumps the construct's logical modification stamp,
    /// which is what invalidates in-flight speculative executions.
    /// Returns the new modification stamp.
    pub fn apply_modification(&mut self, pos: BlockPos, kind: Option<CircuitBlock>) -> u64 {
        match (self.blueprint.index_of(pos), kind) {
            (Some(idx), Some(new_kind)) => {
                self.blueprint.add(pos, new_kind);
                self.state.powers_mut()[idx] = 0;
            }
            (Some(idx), None) => {
                self.blueprint.add(pos, CircuitBlock::Wire);
                self.state.powers_mut()[idx] = 0;
            }
            (None, Some(new_kind)) => {
                self.blueprint.add(pos, new_kind);
                self.state.powers_mut().push(0);
            }
            (None, None) => {}
        }
        self.modification_counter += 1;
        self.state.set_modification_stamp(self.modification_counter);
        self.modification_counter
    }

    /// Replaces the construct's state with an externally computed state
    /// (e.g. a speculative state received from a serverless function).
    ///
    /// The caller is responsible for having validated the state's
    /// modification stamp; the engine only checks the block count.
    ///
    /// # Panics
    ///
    /// Panics if the state's block count does not match the blueprint.
    pub fn apply_state(&mut self, state: ConstructState) {
        assert_eq!(
            state.len(),
            self.blueprint.len(),
            "state block count must match blueprint"
        );
        self.state = state;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    fn line_construct() -> Construct {
        let mut b = Blueprint::new();
        b.add(BlockPos::new(0, 0, 0), CircuitBlock::PowerSource);
        for x in 1..=5 {
            b.add(BlockPos::new(x, 0, 0), CircuitBlock::Wire);
        }
        b.add(BlockPos::new(6, 0, 0), CircuitBlock::Lamp);
        Construct::new(b)
    }

    #[test]
    fn wire_signal_decays_with_distance() {
        let mut c = line_construct();
        c.step();
        let p = c.state().powers();
        assert_eq!(p[1], MAX_POWER - 1);
        assert_eq!(p[2], MAX_POWER - 2);
        assert_eq!(p[5], MAX_POWER - 5);
        // The lamp is lit because the adjacent wire carries signal.
        assert_eq!(p[6], MAX_POWER);
    }

    #[test]
    fn long_wire_runs_out_of_signal() {
        let mut b = Blueprint::new();
        b.add(BlockPos::new(0, 0, 0), CircuitBlock::PowerSource);
        for x in 1..=20 {
            b.add(BlockPos::new(x, 0, 0), CircuitBlock::Wire);
        }
        b.add(BlockPos::new(21, 0, 0), CircuitBlock::Lamp);
        let mut c = Construct::new(b);
        c.step_many(30);
        // Signal strength 15 cannot reach past ~15 wire blocks.
        assert_eq!(c.state().powers()[20], 0);
        assert_eq!(*c.state().powers().last().unwrap(), 0);
    }

    #[test]
    fn stepping_is_deterministic() {
        let mut a = Construct::new(generators::dense_circuit(100));
        let mut b = Construct::new(generators::dense_circuit(100));
        let sa = a.step_many(50);
        let sb = b.step_many(50);
        assert_eq!(sa, sb);
    }

    #[test]
    fn torch_clock_oscillates_and_loops() {
        let mut c = Construct::new(generators::clock(3));
        let hashes: Vec<u64> = c.step_many(32).iter().map(|s| s.hash()).collect();
        let distinct: std::collections::HashSet<u64> = hashes.iter().copied().collect();
        // The clock must visit at least two distinct states and revisit them.
        assert!(distinct.len() >= 2, "distinct states: {}", distinct.len());
        assert!(distinct.len() < hashes.len());
    }

    #[test]
    fn step_many_returns_sequence_with_increasing_steps() {
        let mut c = line_construct();
        let states = c.step_many(10);
        assert_eq!(states.len(), 10);
        for (i, s) in states.iter().enumerate() {
            assert_eq!(s.step(), i as u64 + 1);
        }
    }

    #[test]
    fn modification_bumps_stamp_and_invalidates() {
        let mut c = line_construct();
        assert_eq!(c.modification_stamp(), 0);
        let stamp = c.apply_modification(BlockPos::new(3, 0, 0), None);
        assert_eq!(stamp, 1);
        assert_eq!(c.state().modification_stamp(), 1);
        let stamp = c.apply_modification(BlockPos::new(10, 0, 0), Some(CircuitBlock::Torch));
        assert_eq!(stamp, 2);
        assert_eq!(c.len(), 8);
    }

    #[test]
    fn with_state_resumes_from_snapshot() {
        let mut original = line_construct();
        original.step_many(4);
        let snapshot = original.state().clone();
        let mut resumed = Construct::with_state(original.blueprint().clone(), snapshot);
        original.step();
        resumed.step();
        assert_eq!(original.state(), resumed.state());
    }

    #[test]
    #[should_panic(expected = "state block count")]
    fn apply_state_rejects_mismatched_size() {
        let mut c = line_construct();
        c.apply_state(ConstructState::initial(1));
    }

    #[test]
    fn lamp_turns_off_when_source_removed() {
        let mut c = line_construct();
        c.step_many(3);
        assert_eq!(c.state().powers()[6], MAX_POWER);
        c.apply_modification(BlockPos::new(0, 0, 0), None);
        c.step_many(3);
        assert_eq!(c.state().powers()[6], 0);
        assert_eq!(c.state().powered_blocks(), 0);
    }

    #[test]
    fn wires_cannot_sustain_themselves() {
        // A ring of wires with no emitter must stay dead even if it starts
        // powered (e.g. via a stale external state).
        let mut b = Blueprint::new();
        b.add(BlockPos::new(0, 0, 0), CircuitBlock::Wire);
        b.add(BlockPos::new(1, 0, 0), CircuitBlock::Wire);
        b.add(BlockPos::new(1, 0, 1), CircuitBlock::Wire);
        b.add(BlockPos::new(0, 0, 1), CircuitBlock::Wire);
        let state = ConstructState::from_powers(vec![15, 14, 13, 14], 0, 0);
        let mut c = Construct::with_state(b, state);
        c.step();
        assert_eq!(c.state().powered_blocks(), 0);
    }
}

//! Property-based tests for the simulated-construct engine.

use proptest::prelude::*;
use servo_redstone::{generators, simulate_sequence, Blueprint, CircuitBlock, Construct};
use servo_types::BlockPos;

fn arb_circuit_block() -> impl Strategy<Value = CircuitBlock> {
    prop::sample::select(vec![
        CircuitBlock::PowerSource,
        CircuitBlock::Wire,
        CircuitBlock::Lamp,
        CircuitBlock::Repeater,
        CircuitBlock::Torch,
    ])
}

/// An arbitrary connected-ish construct laid out on a small grid.
fn arb_blueprint() -> impl Strategy<Value = Blueprint> {
    prop::collection::vec(((0i32..8, 0i32..2, 0i32..8), arb_circuit_block()), 1..60).prop_map(
        |blocks| {
            let mut blueprint = Blueprint::new();
            for ((x, y, z), kind) in blocks {
                blueprint.add(BlockPos::new(x, y, z), kind);
            }
            blueprint
        },
    )
}

proptest! {
    /// Stepping is deterministic: two constructs built from the same
    /// blueprint always evolve identically.
    #[test]
    fn stepping_is_deterministic(blueprint in arb_blueprint(), steps in 1usize..60) {
        let mut a = Construct::new(blueprint.clone());
        let mut b = Construct::new(blueprint);
        prop_assert_eq!(a.step_many(steps), b.step_many(steps));
    }

    /// Power levels always stay within the valid 0..=15 range.
    #[test]
    fn power_levels_are_bounded(blueprint in arb_blueprint(), steps in 1usize..40) {
        let mut construct = Construct::new(blueprint);
        for _ in 0..steps {
            construct.step();
            prop_assert!(construct.state().powers().iter().all(|&p| p <= 15));
        }
    }

    /// A construct with no power sources, torches or repeaters can never
    /// become powered: wires cannot sustain themselves.
    #[test]
    fn passive_constructs_stay_dead(
        positions in prop::collection::vec((0i32..10, 0i32..10), 1..40),
        steps in 1usize..30,
    ) {
        let mut blueprint = Blueprint::new();
        for (i, (x, z)) in positions.iter().enumerate() {
            let kind = if i % 2 == 0 { CircuitBlock::Wire } else { CircuitBlock::Lamp };
            blueprint.add(BlockPos::new(*x, 0, *z), kind);
        }
        let mut construct = Construct::new(blueprint);
        construct.step_many(steps);
        prop_assert_eq!(construct.state().powered_blocks(), 0);
    }

    /// The loop detector never lies: when it reports a cycle, the state at
    /// the cycle start and at the recurrence point hash identically, and
    /// replaying via `state_at` agrees with live simulation.
    #[test]
    fn detected_loops_replay_correctly(blueprint in arb_blueprint(), extra in 1usize..50) {
        let mut offloaded = Construct::new(blueprint.clone());
        let outcome = simulate_sequence(&mut offloaded, 64);
        let mut live = Construct::new(blueprint);
        let horizon = outcome.simulated_steps + if outcome.loop_info.is_some() { extra } else { 0 };
        for step in 1..=horizon {
            live.step();
            if let Some(state) = outcome.state_at(step) {
                prop_assert_eq!(state.hash(), live.state().hash(), "step {}", step);
            } else {
                prop_assert!(outcome.loop_info.is_none());
                prop_assert!(step > outcome.simulated_steps);
            }
        }
    }

    /// Resuming from a snapshot is equivalent to continuous simulation.
    #[test]
    fn snapshot_resume_is_equivalent(blueprint in arb_blueprint(), split in 1usize..30, rest in 1usize..30) {
        let mut continuous = Construct::new(blueprint.clone());
        continuous.step_many(split + rest);

        let mut first = Construct::new(blueprint.clone());
        first.step_many(split);
        let mut resumed = Construct::with_state(blueprint, first.state().clone());
        resumed.step_many(rest);

        prop_assert_eq!(continuous.state().powers(), resumed.state().powers());
    }

    /// Modifications always bump the logical timestamp monotonically.
    #[test]
    fn modification_stamps_are_monotonic(count in 1usize..20) {
        let mut construct = Construct::new(generators::wire_line(6));
        let mut previous = construct.modification_stamp();
        for i in 0..count {
            let stamp = construct.apply_modification(
                BlockPos::new(i as i32 % 8, 0, 0),
                if i % 2 == 0 { None } else { Some(CircuitBlock::Torch) },
            );
            prop_assert!(stamp > previous);
            previous = stamp;
        }
    }

    /// The dense-circuit generator always produces the exact requested size.
    #[test]
    fn dense_circuit_size_is_exact(n in 1usize..600) {
        prop_assert_eq!(generators::dense_circuit(n).len(), n);
    }
}

//! Failure-injection tests: Servo must degrade gracefully when the
//! serverless substrate misbehaves (concurrency limits, timeouts), falling
//! back to local simulation and staying correct.

use servo::core::{ServoConfig, ServoDeployment, SpeculationConfig, SpeculativeScBackend};
use servo::faas::{FaasPlatform, FunctionConfig};
use servo::redstone::{generators, Construct};
use servo::server::{ScBackend, ScResolution};
use servo::simkit::SimRng;
use servo::types::{ConstructId, MemoryMb, SimDuration, SimTime, Tick};
use servo::workload::{BehaviorKind, PlayerFleet};

/// With a concurrency limit of zero every invocation fails; the construct
/// must still advance correctly, entirely through local fallback.
#[test]
fn offload_failures_fall_back_to_local_simulation() {
    let mut function = FunctionConfig::aws_like(MemoryMb::new(1024));
    function.max_concurrency = Some(0);
    let platform = FaasPlatform::new(function, SimRng::seed(1));
    let mut backend = SpeculativeScBackend::new(SpeculationConfig::default(), platform);

    let blueprint = generators::dense_circuit(80);
    let mut offloaded = Construct::new(blueprint.clone());
    let mut reference = Construct::new(blueprint);
    for t in 0..200u64 {
        let resolution = backend.resolve(
            ConstructId::new(0),
            &mut offloaded,
            Tick(t),
            SimTime::from_millis(t * 50),
        );
        assert_eq!(resolution, ScResolution::LocalSimulated);
        reference.step();
        assert_eq!(offloaded.state().hash(), reference.state().hash());
    }
    let stats = backend.handle().stats();
    assert_eq!(stats.speculative_applied, 0);
    assert!(stats.failed > 0);
}

/// An aggressive function timeout rejects the configured simulation length;
/// the game keeps running (all constructs simulated locally) and still
/// satisfies basic liveness.
#[test]
fn timeouts_do_not_stall_the_game_loop() {
    let mut sc_function = FunctionConfig::aws_like(MemoryMb::new(512));
    sc_function.timeout = SimDuration::from_millis(1);
    let mut config = ServoConfig {
        sc_function,
        ..ServoConfig::default()
    };
    config.server = config.server.clone().with_view_distance(32);
    let mut deployment = ServoDeployment::from_config(config);
    deployment
        .server
        .add_constructs(10, |_| generators::dense_circuit(64));
    let mut fleet = PlayerFleet::new(BehaviorKind::Bounded { radius: 24.0 }, SimRng::seed(2));
    fleet.connect_all(10);
    deployment
        .server
        .run_with_fleet(&mut fleet, SimDuration::from_secs(5));

    let stats = deployment.server.stats();
    // The initial terrain load makes a few early ticks overrun their budget,
    // so slightly fewer than 100 ticks fit into five virtual seconds; the
    // loop must keep running regardless.
    assert!(
        stats.ticks >= 80 && stats.ticks <= 100,
        "ticks {}",
        stats.ticks
    );
    assert_eq!(stats.sc_merged, 0);
    assert_eq!(stats.sc_local, 10 * stats.ticks);
    // Every construct advanced exactly once per tick despite the failures.
    assert_eq!(
        deployment
            .server
            .construct(ConstructId::new(0))
            .unwrap()
            .state()
            .step(),
        stats.ticks
    );
}

/// Player modifications racing in-flight speculation never corrupt construct
/// state: the stale reply is discarded and the construct's evolution matches
/// a purely local reference that received the same modifications.
#[test]
fn stale_replies_are_discarded_on_modification_races() {
    let platform = FaasPlatform::new(
        FunctionConfig::aws_like(MemoryMb::new(2048)),
        SimRng::seed(3),
    );
    let mut backend = SpeculativeScBackend::new(SpeculationConfig::default(), platform);
    let blueprint = generators::dense_circuit(120);
    let mut offloaded = Construct::new(blueprint.clone());
    let mut reference = Construct::new(blueprint);

    for t in 0..600u64 {
        // Every 97 ticks a player breaks a block of the construct.
        if t % 97 == 41 {
            let pos = servo::types::BlockPos::new((t % 16) as i32, 0, ((t / 16) % 4) as i32);
            offloaded.apply_modification(pos, None);
            reference.apply_modification(pos, None);
        }
        backend.resolve(
            ConstructId::new(0),
            &mut offloaded,
            Tick(t),
            SimTime::from_millis(t * 50),
        );
        reference.step();
        assert_eq!(
            offloaded.state().hash(),
            reference.state().hash(),
            "divergence at tick {t}"
        );
    }
    // At least one reply must have been discarded as stale for this test to
    // exercise the interesting path.
    assert!(backend.handle().stats().discarded_stale + backend.handle().stats().local_fallback > 0);
}

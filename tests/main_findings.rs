//! End-to-end integration tests asserting the paper's main findings
//! (MF1–MF6) qualitatively, at a scale small enough for CI.

use servo::core::{ServoDeployment, SpeculationConfig, SpeculativeScBackend};
use servo::faas::{FaasPlatform, FunctionConfig};
use servo::metrics::{qos_satisfied_default, Summary};
use servo::redstone::{generators, Construct};
use servo::server::{GameServer, ScBackend, ServerConfig};
use servo::simkit::SimRng;
use servo::types::{ConstructId, MemoryMb, SimDuration, SimTime, Tick};
use servo::workload::{BehaviorKind, PlayerFleet};
use servo::world::WorldKind;

fn bounded_fleet(players: usize, seed: u64) -> PlayerFleet {
    let mut fleet = PlayerFleet::new(BehaviorKind::Bounded { radius: 24.0 }, SimRng::seed(seed));
    fleet.connect_all(players);
    fleet
}

fn run_sc_workload(
    mut server: GameServer,
    constructs: usize,
    players: usize,
) -> Vec<servo::types::SimDuration> {
    server.add_constructs(constructs, |_| generators::dense_circuit(64));
    let mut fleet = bounded_fleet(players, 99);
    server.run_with_fleet(&mut fleet, SimDuration::from_secs(3));
    server.discard_reports();
    server.run_with_fleet(&mut fleet, SimDuration::from_secs(8));
    server.tick_durations()
}

/// MF1: serverless offloading of simulated constructs improves scalability —
/// with a construct-heavy workload Servo meets the QoS target at a player
/// count where both baselines fail outright.
#[test]
fn mf1_servo_supports_more_players_under_sc_load() {
    let constructs = 150;
    let players = 60;

    let servo = ServoDeployment::builder()
        .seed(5)
        .view_distance(32)
        .build()
        .server;
    let servo_ticks = run_sc_workload(servo, constructs, players);
    assert!(
        qos_satisfied_default(&servo_ticks),
        "Servo p95 {:.1} ms",
        Summary::from_durations(&servo_ticks).p95
    );

    let opencraft =
        ServoDeployment::opencraft_baseline(5, &ServerConfig::opencraft().with_view_distance(32));
    let opencraft_ticks = run_sc_workload(opencraft, constructs, players);
    assert!(!qos_satisfied_default(&opencraft_ticks));

    let minecraft =
        ServoDeployment::minecraft_baseline(5, &ServerConfig::minecraft().with_view_distance(32));
    let minecraft_ticks = run_sc_workload(minecraft, constructs, players);
    assert!(!qos_satisfied_default(&minecraft_ticks));
}

/// The ordering of Figure 7a also holds without constructs: the lean
/// Opencraft baseline beats Minecraft, and Servo sits close to Opencraft.
#[test]
fn baseline_ordering_without_constructs() {
    let mean = |ticks: &[servo::types::SimDuration]| {
        ticks.iter().map(|d| d.as_millis_f64()).sum::<f64>() / ticks.len() as f64
    };
    let servo = mean(&run_sc_workload(
        ServoDeployment::builder()
            .seed(6)
            .view_distance(32)
            .build()
            .server,
        0,
        100,
    ));
    let opencraft = mean(&run_sc_workload(
        ServoDeployment::opencraft_baseline(6, &ServerConfig::opencraft().with_view_distance(32)),
        0,
        100,
    ));
    let minecraft = mean(&run_sc_workload(
        ServoDeployment::minecraft_baseline(6, &ServerConfig::minecraft().with_view_distance(32)),
        0,
        100,
    ));
    assert!(
        opencraft < minecraft,
        "opencraft {opencraft} vs minecraft {minecraft}"
    );
    assert!(servo < minecraft, "servo {servo} vs minecraft {minecraft}");
}

/// MF2: speculative execution hides the offloading latency — with a
/// generous tick lead the median efficiency reaches (nearly) 100%, and it is
/// clearly lower without a lead.
#[test]
fn mf2_tick_lead_hides_latency() {
    let run = |lead: u64| {
        let platform = FaasPlatform::new(
            FunctionConfig::aws_like(MemoryMb::new(2048)),
            SimRng::seed(21 + lead),
        );
        let config = SpeculationConfig {
            tick_lead: lead,
            simulation_steps: 100,
            loop_detection: false,
            ..SpeculationConfig::default()
        };
        let mut backend = SpeculativeScBackend::new(config, platform);
        let mut construct = Construct::new(generators::paper_medium());
        for t in 0..900u64 {
            backend.resolve(
                ConstructId::new(0),
                &mut construct,
                Tick(t),
                SimTime::from_millis(t * 50),
            );
        }
        backend.handle().stats().median_efficiency().unwrap()
    };
    let without_lead = run(0);
    let with_lead = run(40);
    assert!(with_lead >= 0.99, "lead-40 efficiency {with_lead}");
    assert!(without_lead < with_lead);
    assert!(without_lead > 0.6, "lead-0 efficiency {without_lead}");
}

/// MF3: serverless content generation provides good QoS — Servo keeps the
/// view range near the target while Opencraft's falls behind once players
/// speed up.
#[test]
fn mf3_serverless_generation_keeps_view_range() {
    let run = |servo: bool| -> f64 {
        let mut server = if servo {
            ServoDeployment::builder()
                .seed(31)
                .view_distance(96)
                .world_kind(WorldKind::Default)
                .build()
                .server
        } else {
            ServoDeployment::opencraft_baseline(
                31,
                &ServerConfig::opencraft()
                    .with_view_distance(96)
                    .with_world_kind(WorldKind::Default),
            )
        };
        let mut fleet = PlayerFleet::new(BehaviorKind::Star { speed: 6.0 }, SimRng::seed(32));
        fleet.connect_all(5);
        server.run_with_fleet(&mut fleet, SimDuration::from_secs(90));
        // Ignore the initial loading transient; look at the steady state.
        let series = server.view_range_series();
        let tail = &series[series.len() / 2..];
        tail.iter().map(|p| p.value).sum::<f64>() / tail.len() as f64
    };
    let servo_view = run(true);
    let opencraft_view = run(false);
    assert!(
        servo_view > opencraft_view + 20.0,
        "servo {servo_view:.0} vs opencraft {opencraft_view:.0}"
    );
    assert!(
        servo_view > 80.0,
        "servo steady-state view range {servo_view:.0}"
    );
}

/// MF6: small and medium constructs simulate far faster than the 20 Hz game
/// rate inside the offload function, and the loop-detection optimization
/// eliminates repeat invocations for cyclic constructs.
#[test]
fn mf6_offloaded_simulation_is_fast_and_loops_are_detected() {
    let model = servo::core::ScWorkModel::default();
    let small_rate = 1000.0 / model.work_per_step(252);
    let medium_rate = 1000.0 / model.work_per_step(484);
    assert!(
        small_rate / 20.0 > 10.0,
        "small construct speed-up {small_rate}"
    );
    assert!(
        medium_rate / 20.0 > 4.0,
        "medium construct speed-up {medium_rate}"
    );

    let platform = FaasPlatform::new(
        FunctionConfig::aws_like(MemoryMb::new(2048)),
        SimRng::seed(61),
    );
    let mut backend = SpeculativeScBackend::new(SpeculationConfig::default(), platform);
    let mut clock = Construct::new(generators::clock(8));
    for t in 0..400u64 {
        backend.resolve(
            ConstructId::new(0),
            &mut clock,
            Tick(t),
            SimTime::from_millis(t * 50),
        );
    }
    let stats = backend.handle().stats();
    assert!(stats.invocations <= 3, "invocations {}", stats.invocations);
    assert!(stats.loop_replayed > 200);
}

/// Determinism: the whole stack is reproducible from a seed.
#[test]
fn identical_seeds_give_identical_runs() {
    let run = || {
        let mut deployment = ServoDeployment::builder()
            .seed(77)
            .view_distance(32)
            .build();
        deployment
            .server
            .add_constructs(20, |_| generators::dense_circuit(64));
        let mut fleet = bounded_fleet(20, 78);
        deployment
            .server
            .run_with_fleet(&mut fleet, SimDuration::from_secs(5));
        (
            deployment.server.tick_durations(),
            deployment.server.stats(),
            deployment.speculation.stats().invocations,
        )
    };
    let (ticks_a, stats_a, inv_a) = run();
    let (ticks_b, stats_b, inv_b) = run();
    assert_eq!(ticks_a, ticks_b);
    assert_eq!(stats_a, stats_b);
    assert_eq!(inv_a, inv_b);
}

//! Integration tests for the storage path: MF5 (caching tames the latency
//! tail) and the terrain persistence round trip across crates.

use servo::core::{PrefetchPolicy, RemoteTerrainStore};
use servo::metrics::{percentile, Summary};
use servo::pcg::{DefaultGenerator, TerrainGenerator};
use servo::simkit::SimRng;
use servo::storage::{BlobStore, BlobTier, LocalDiskStore, ObjectStore};
use servo::types::{BlockPos, ChunkPos, SimTime};
use servo::world::Chunk;

fn seed_blob(radius: i32, seed: u64) -> BlobStore {
    let generator = DefaultGenerator::new(4242);
    let mut store = BlobStore::new(BlobTier::Standard, SimRng::seed(seed));
    for x in -radius..=radius {
        for z in -radius..=radius {
            let chunk = generator.generate(ChunkPos::new(x, z));
            store
                .write(&format!("terrain/{x}/{z}"), chunk.to_bytes(), SimTime::ZERO)
                .unwrap();
        }
    }
    store
}

/// MF5: with the cache and pre-fetching, the 99.9th-percentile terrain read
/// latency drops below one simulation step, while direct serverless reads
/// have a much heavier tail.
#[test]
fn mf5_cache_reduces_latency_tail() {
    let radius = 24;

    // Direct serverless reads along a walking path.
    let mut direct = seed_blob(radius, 1);
    let mut direct_latencies = Vec::new();
    // Cached reads along the same path.
    let mut cached = RemoteTerrainStore::new(
        seed_blob(radius, 2),
        SimRng::seed(3),
        PrefetchPolicy {
            view_distance_blocks: 48,
            prefetch_margin_blocks: 48,
            eviction_margin_blocks: 64,
        },
    );
    let mut cached_latencies = Vec::new();

    for tick in 0..(20 * 120u64) {
        let now = SimTime::from_millis(tick * 50);
        let x = (tick as f64 * 0.15) as i32; // 3 blocks per second
        let player = [BlockPos::new(x, 4, 0)];
        cached.maintain(&player, now);
        let ahead = ChunkPos::from(BlockPos::new(x + 40, 4, 0));
        if let Ok(read) = cached.read(ahead, now) {
            cached_latencies.push(read.latency.as_millis_f64());
        }
        if let Ok(read) = direct.read(&format!("terrain/{}/{}", ahead.x, ahead.z), now) {
            direct_latencies.push(read.latency.as_millis_f64());
        }
    }

    // Discount the start-up transient, as the paper does when attributing
    // the largest cache outliers to cold starts.
    let cached_latencies = &cached_latencies[100.min(cached_latencies.len() / 2)..];
    let direct_latencies = &direct_latencies[100.min(direct_latencies.len() / 2)..];
    let cached_p999 = percentile(cached_latencies, 0.999);
    let direct_p999 = percentile(direct_latencies, 0.999);
    assert!(cached_p999 < 50.0, "cached 99.9p {cached_p999} ms");
    assert!(
        direct_p999 > cached_p999,
        "direct 99.9p {direct_p999} vs cached {cached_p999}"
    );
    assert!(cached.stats().hit_rate() > 0.8);
}

/// Local disk has a tight latency profile, matching the paper's baseline
/// curve in Figure 13.
#[test]
fn local_storage_has_tight_tail() {
    let mut store = LocalDiskStore::new(SimRng::seed(9));
    let chunk = Chunk::empty(ChunkPos::new(0, 0));
    store
        .write("terrain/0/0", chunk.to_bytes(), SimTime::ZERO)
        .unwrap();
    let mut latencies = Vec::new();
    let mut now = SimTime::ZERO;
    for _ in 0..4000 {
        let read = store.read("terrain/0/0", now).unwrap();
        now = read.completed_at;
        latencies.push(read.latency.as_millis_f64());
    }
    // Skip the boot-time outliers, as the paper does in its analysis.
    let steady = &latencies[50..];
    let s = Summary::from_values(steady);
    assert!(s.p999 <= 16.0, "99.9p {:.1}", s.p999);
}

/// Terrain survives a full persistence round trip: generate, serialize,
/// store remotely, evict, read back through the cache, deserialize.
#[test]
fn terrain_round_trips_through_remote_storage() {
    let generator = DefaultGenerator::new(31337);
    let mut store = RemoteTerrainStore::new(
        BlobStore::new(BlobTier::Premium, SimRng::seed(4)),
        SimRng::seed(5),
        PrefetchPolicy::default(),
    );
    let positions: Vec<ChunkPos> = (0..6).map(|i| ChunkPos::new(i, -i)).collect();
    for &pos in &positions {
        let chunk = generator.generate(pos);
        store.put(chunk.snapshot(), SimTime::ZERO).unwrap();
    }
    assert_eq!(store.flush(SimTime::ZERO), positions.len());
    // Force everything out of memory, keeping only remote + local copies.
    store.maintain(&[BlockPos::new(100_000, 4, 100_000)], SimTime::from_secs(1));
    assert_eq!(store.resident_chunks(), 0);

    for &pos in &positions {
        let read = store.read(pos, SimTime::from_secs(2)).unwrap();
        let restored = read.snapshot.restore().unwrap();
        let expected = generator.generate(pos);
        assert_eq!(restored.to_bytes(), expected.to_bytes(), "chunk {pos}");
    }
}

/// Storage failures surface as errors but do not corrupt the store; the next
/// operation succeeds (the game falls back to regeneration in the meantime).
#[test]
fn storage_failures_are_transient() {
    let mut store = BlobStore::new(BlobTier::Standard, SimRng::seed(6));
    store
        .write("terrain/0/0", vec![1, 2, 3], SimTime::ZERO)
        .unwrap();
    store.inject_failure("503 server busy");
    assert!(store.read("terrain/0/0", SimTime::ZERO).is_err());
    let read = store.read("terrain/0/0", SimTime::ZERO).unwrap();
    assert_eq!(read.data, vec![1, 2, 3]);
}

//! Cross-crate property-based tests: the invariants Servo's correctness
//! rests on, checked with randomly generated constructs, schedules and
//! terrain.

use proptest::prelude::*;
use servo::core::{SpeculationConfig, SpeculativeScBackend};
use servo::faas::{FaasPlatform, FunctionConfig};
use servo::pcg::{DefaultGenerator, FlatGenerator, TerrainGenerator};
use servo::redstone::{Blueprint, CircuitBlock, Construct};
use servo::server::ScBackend;
use servo::simkit::SimRng;
use servo::storage::{BlobStore, BlobTier, CachedChunkStore};
use servo::types::{BlockPos, ChunkPos, ConstructId, MemoryMb, SimTime, Tick};

fn arb_blueprint() -> impl Strategy<Value = Blueprint> {
    prop::collection::vec(
        (
            (0i32..8, 0i32..2, 0i32..8),
            prop::sample::select(vec![
                CircuitBlock::PowerSource,
                CircuitBlock::Wire,
                CircuitBlock::Lamp,
                CircuitBlock::Repeater,
                CircuitBlock::Torch,
            ]),
        ),
        2..50,
    )
    .prop_map(|blocks| {
        let mut blueprint = Blueprint::new();
        for ((x, y, z), kind) in blocks {
            blueprint.add(BlockPos::new(x, y, z), kind);
        }
        blueprint
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Servo's central correctness property (Section III-C): speculative
    /// offloading never changes the construct's evolution, for any construct
    /// shape, tick lead, and simulation length.
    #[test]
    fn speculation_is_transparent(
        blueprint in arb_blueprint(),
        tick_lead in 0u64..40,
        simulation_steps in 5usize..120,
        loop_detection in any::<bool>(),
        seed in any::<u64>(),
        ticks in 50u64..250,
    ) {
        let config = SpeculationConfig {
            tick_lead,
            simulation_steps,
            loop_detection,
            ..SpeculationConfig::default()
        };
        let platform = FaasPlatform::new(
            FunctionConfig::aws_like(MemoryMb::new(2048)),
            SimRng::seed(seed),
        );
        let mut backend = SpeculativeScBackend::new(config, platform);
        let mut offloaded = Construct::new(blueprint.clone());
        let mut reference = Construct::new(blueprint);
        for t in 0..ticks {
            backend.resolve(
                ConstructId::new(0),
                &mut offloaded,
                Tick(t),
                SimTime::from_millis(t * 50),
            );
            reference.step();
            prop_assert_eq!(offloaded.state().hash(), reference.state().hash(), "tick {}", t);
            prop_assert_eq!(offloaded.state().step(), reference.state().step());
        }
    }

    /// Whatever is written through the cache is read back identically,
    /// regardless of eviction and write-back order.
    #[test]
    fn cache_is_coherent_with_remote(
        chunk_coords in prop::collection::vec((-20i32..20, -20i32..20), 1..15),
        evict_first in any::<bool>(),
        seed in any::<u64>(),
    ) {
        let generator = FlatGenerator::new(5);
        let remote = BlobStore::new(BlobTier::Standard, SimRng::seed(seed));
        let mut cache = CachedChunkStore::new(remote, SimRng::seed(seed ^ 1));
        let mut expected = Vec::new();
        for (x, z) in &chunk_coords {
            let pos = ChunkPos::new(*x, *z);
            let chunk = generator.generate(pos);
            expected.push((pos, chunk.to_bytes()));
            cache.put(chunk.snapshot(), SimTime::ZERO).unwrap();
        }
        if evict_first {
            cache.write_back_dirty(SimTime::ZERO);
            cache.evict_except(&std::collections::HashSet::new(), SimTime::ZERO);
        }
        for (pos, bytes) in expected {
            let read = cache.read(pos, SimTime::from_secs(1)).unwrap();
            prop_assert_eq!(read.snapshot.bytes, bytes);
        }
    }

    /// Terrain generation is a pure function of (seed, chunk position): any
    /// two generators with the same seed agree, and serialization preserves
    /// the generated content exactly.
    #[test]
    fn generation_is_deterministic_and_serializable(
        seed in any::<u64>(),
        x in -500i32..500,
        z in -500i32..500,
    ) {
        let a = DefaultGenerator::new(seed).generate(ChunkPos::new(x, z));
        let b = DefaultGenerator::new(seed).generate(ChunkPos::new(x, z));
        prop_assert_eq!(a.to_bytes(), b.to_bytes());
        let restored = servo::world::Chunk::from_bytes(&a.to_bytes()).unwrap();
        prop_assert_eq!(restored.pos(), ChunkPos::new(x, z));
        prop_assert_eq!(restored.non_air_blocks(), a.non_air_blocks());
    }

    /// The FaaS platform never bills more invocations than were issued and
    /// never reports a completion before the request.
    #[test]
    fn faas_invocations_are_causal(
        works in prop::collection::vec(0.1f64..2000.0, 1..40),
        memory in prop::sample::select(MemoryMb::PAPER_SWEEP.to_vec()),
        seed in any::<u64>(),
    ) {
        let mut platform = FaasPlatform::new(FunctionConfig::aws_like(memory), SimRng::seed(seed));
        let mut now = SimTime::ZERO;
        let mut issued = 0u64;
        for work in works {
            let inv = platform.invoke(now, work).unwrap();
            prop_assert!(inv.completed_at > now);
            prop_assert!(inv.latency >= inv.compute);
            issued += 1;
            now = inv.completed_at;
        }
        prop_assert_eq!(platform.billing().invocations(), issued);
        prop_assert!(platform.stats().cold_starts >= 1);
        prop_assert!(platform.stats().cold_starts <= issued);
    }
}

//! # Servo — serverless backend for modifiable virtual environments
//!
//! This is the facade crate of the Servo reproduction (Donkervliet et al.,
//! ICDCS 2023). It re-exports the individual crates of the workspace so that
//! applications, the examples, and the integration tests can depend on a
//! single crate:
//!
//! | module | crate | contents |
//! |---|---|---|
//! | [`types`] | `servo-types` | positions, ticks, ids, units, errors |
//! | [`simkit`] | `servo-simkit` | virtual clock, event queue, RNG, latency models |
//! | [`metrics`] | `servo-metrics` | percentiles, boxplots, CCDFs, capacity search |
//! | [`world`] | `servo-world` | chunks, blocks, view distance |
//! | [`redstone`] | `servo-redstone` | simulated-construct engine, loop detection |
//! | [`pcg`] | `servo-pcg` | Perlin noise and terrain generators |
//! | [`faas`] | `servo-faas` | FaaS platform simulator and billing |
//! | [`storage`] | `servo-storage` | local/blob storage models, cache + pre-fetch |
//! | [`workload`] | `servo-workload` | player behaviours and fleets |
//! | [`replication`] | `servo-replication` | interest-managed delta broadcast to clients |
//! | [`server`] | `servo-server` | the MVE game loop and the baseline systems |
//! | [`core`] | `servo-core` | Servo itself: speculative offloading, serverless generation, remote storage |
//!
//! # Quickstart
//!
//! ```
//! use servo::core::ServoDeployment;
//! use servo::redstone::generators;
//! use servo::workload::{BehaviorKind, PlayerFleet};
//! use servo::simkit::SimRng;
//! use servo::types::SimDuration;
//!
//! // Build a Servo instance, add player-built constructs, connect players.
//! let mut deployment = ServoDeployment::builder().seed(1).view_distance(32).build();
//! deployment.server.add_constructs(25, |_| generators::dense_circuit(64));
//! let mut fleet = PlayerFleet::new(BehaviorKind::Bounded { radius: 24.0 }, SimRng::seed(2));
//! fleet.connect_all(40);
//!
//! // Run ten seconds of game time and check the tick budget was met.
//! deployment.server.run_with_fleet(&mut fleet, SimDuration::from_secs(10));
//! let durations = deployment.server.tick_durations();
//! assert!(servo::metrics::qos_satisfied_default(&durations));
//! ```

#![warn(missing_docs)]

pub use servo_core as core;
pub use servo_faas as faas;
pub use servo_metrics as metrics;
pub use servo_pcg as pcg;
pub use servo_redstone as redstone;
pub use servo_replication as replication;
pub use servo_server as server;
pub use servo_simkit as simkit;
pub use servo_storage as storage;
pub use servo_types as types;
pub use servo_workload as workload;
pub use servo_world as world;

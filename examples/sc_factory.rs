//! A "redstone factory" scenario: a world packed with player-built
//! machinery, the workload the paper's introduction motivates (a single
//! player can build constructs that exceed a whole server's capacity).
//!
//! The example compares how Servo, Opencraft and Minecraft cope with the
//! same factory world and prints a small capacity table.
//!
//! Run with: `cargo run --release --example sc_factory`

use servo::core::ServoDeployment;
use servo::metrics::{qos_satisfied_default, Summary, Table};
use servo::redstone::generators;
use servo::server::{GameServer, ServerConfig};
use servo::simkit::SimRng;
use servo::types::SimDuration;
use servo::workload::{BehaviorKind, PlayerFleet};

/// Builds one of the three systems hosting the factory world.
fn build(name: &str, constructs: usize) -> GameServer {
    let mut server = match name {
        "Servo" => {
            ServoDeployment::builder()
                .seed(11)
                .view_distance(32)
                .build()
                .server
        }
        "Opencraft" => ServoDeployment::opencraft_baseline(
            11,
            &ServerConfig::opencraft().with_view_distance(32),
        ),
        _ => ServoDeployment::minecraft_baseline(
            11,
            &ServerConfig::minecraft().with_view_distance(32),
        ),
    };
    // The factory: clocks (loop-detectable), wire buses, and dense logic.
    server.add_constructs(constructs, |i| match i % 3 {
        0 => generators::clock(8 + (i % 5)),
        1 => generators::lamp_bank(20),
        _ => generators::dense_circuit(96),
    });
    server
}

fn main() {
    let constructs = 120;
    let players = 60;
    let duration = SimDuration::from_secs(60);

    let mut table = Table::new(vec![
        "Game",
        "median tick [ms]",
        "p95 tick [ms]",
        "QoS ok (<5% over 50 ms)",
        "constructs offloaded",
        "loop replays",
    ]);

    for name in ["Servo", "Opencraft", "Minecraft"] {
        let mut server = build(name, constructs);
        let mut fleet = PlayerFleet::new(BehaviorKind::Bounded { radius: 28.0 }, SimRng::seed(23));
        fleet.connect_all(players);
        server.run_with_fleet(&mut fleet, duration);

        let durations = server.tick_durations();
        let summary = Summary::from_durations(&durations);
        let stats = server.stats();
        table.row(vec![
            name.to_string(),
            format!("{:.1}", summary.p50),
            format!("{:.1}", summary.p95),
            qos_satisfied_default(&durations).to_string(),
            stats.sc_merged.to_string(),
            stats.sc_replayed.to_string(),
        ]);
    }

    println!(
        "factory world: {constructs} constructs, {players} players, {} virtual seconds\n",
        duration.as_secs_f64()
    );
    println!("{}", table.render());
    println!(
        "Servo keeps the factory within the 50 ms budget by offloading construct\n\
         simulation to serverless functions and replaying loop-detected circuits."
    );
}

//! Capacity planning: how many players can one instance host for a given
//! amount of player-built machinery? This walks the paper's "maximum number
//! of supported players" methodology (Section IV-B) on a small scale and is
//! the kind of question a game operator would ask before picking a backend.
//!
//! Run with: `cargo run --release --example capacity_planning`

use servo::core::ServoDeployment;
use servo::metrics::{max_supported, Table};
use servo::redstone::generators;
use servo::server::ServerConfig;
use servo::simkit::SimRng;
use servo::types::SimDuration;
use servo::workload::{BehaviorKind, PlayerFleet};

fn capacity(system: &str, constructs: usize) -> u32 {
    let counts: Vec<u32> = (1..=15).map(|i| i * 10).collect();
    let duration = SimDuration::from_secs(15);
    let result = max_supported(&counts, |players| {
        let mut server = match system {
            "Servo" => {
                ServoDeployment::builder()
                    .seed(1)
                    .view_distance(32)
                    .build()
                    .server
            }
            "Opencraft" => ServoDeployment::opencraft_baseline(
                1,
                &ServerConfig::opencraft().with_view_distance(32),
            ),
            _ => ServoDeployment::minecraft_baseline(
                1,
                &ServerConfig::minecraft().with_view_distance(32),
            ),
        };
        server.add_constructs(constructs, |_| generators::dense_circuit(64));
        let mut fleet = PlayerFleet::new(BehaviorKind::Bounded { radius: 24.0 }, SimRng::seed(2));
        fleet.connect_all(players as usize);
        server.run_with_fleet(&mut fleet, SimDuration::from_secs(3));
        server.discard_reports();
        server.run_with_fleet(&mut fleet, duration);
        server.tick_durations()
    });
    result.max_players
}

fn main() {
    println!("capacity planning: maximum players per instance (QoS: <5% of ticks over 50 ms)\n");
    let mut table = Table::new(vec!["Constructs", "Servo", "Opencraft", "Minecraft"]);
    for constructs in [0usize, 50, 100] {
        println!("evaluating workload with {constructs} constructs...");
        table.row(vec![
            constructs.to_string(),
            capacity("Servo", constructs).to_string(),
            capacity("Opencraft", constructs).to_string(),
            capacity("Minecraft", constructs).to_string(),
        ]);
    }
    println!("\n{}", table.render());
    println!(
        "With player-built machinery present, Servo sustains far more players per\n\
         instance than either baseline; without machinery the lean Opencraft\n\
         baseline remains the fastest, as in the paper."
    );
}

//! Quickstart: build a Servo deployment, add player-built simulated
//! constructs, connect players, run a few virtual minutes, and print what
//! the serverless backend did.
//!
//! Run with: `cargo run --release --example quickstart`

use servo::core::ServoDeployment;
use servo::metrics::Summary;
use servo::redstone::generators;
use servo::simkit::SimRng;
use servo::types::SimDuration;
use servo::workload::{BehaviorKind, PlayerFleet};

fn main() {
    // 1. Build a Servo instance: a 20 Hz game server whose simulated
    //    constructs, terrain generation and persistence are offloaded to
    //    (simulated) serverless services.
    let mut deployment = ServoDeployment::builder()
        .seed(42)
        .view_distance(64)
        .build();

    // 2. Players have built 100 circuits of 64 stateful blocks each.
    deployment
        .server
        .add_constructs(100, |_| generators::dense_circuit(64));

    // 3. Connect 80 players that wander around the spawn area.
    let mut fleet = PlayerFleet::new(BehaviorKind::Bounded { radius: 32.0 }, SimRng::seed(7));
    fleet.connect_all(80);

    // 4. Run two virtual minutes of gameplay.
    println!("running 120 virtual seconds with 80 players and 100 constructs...");
    deployment
        .server
        .run_with_fleet(&mut fleet, SimDuration::from_secs(120));

    // 5. Report.
    let durations = deployment.server.tick_durations();
    let summary = Summary::from_durations(&durations);
    let stats = deployment.server.stats();
    let speculation = deployment.speculation.stats();

    println!("\n--- game loop ---");
    println!("ticks executed:        {}", stats.ticks);
    println!("median tick duration:  {:.1} ms", summary.p50);
    println!(
        "95th percentile:       {:.1} ms (budget: 50 ms)",
        summary.p95
    );
    println!(
        "QoS satisfied:         {}",
        servo::metrics::qos_satisfied_default(&durations)
    );

    println!("\n--- simulated constructs ---");
    println!("offloaded (applied):   {}", stats.sc_merged);
    println!("loop replays:          {}", stats.sc_replayed);
    println!("local fallbacks:       {}", stats.sc_local);
    println!(
        "median speculation efficiency: {:.0}%",
        speculation.median_efficiency().unwrap_or(0.0) * 100.0
    );

    println!("\n--- serverless usage ---");
    println!("SC function invocations:      {}", speculation.invocations);
    println!(
        "terrain function invocations: {}",
        deployment.terrain.stats().invocations
    );
    let elapsed = SimDuration::from_secs(120);
    let cost = deployment.speculation.billing().cost_rate(elapsed).value()
        + deployment.terrain.billing().cost_rate(elapsed).value();
    println!("estimated offload cost:       ${cost:.3}/hour");
}

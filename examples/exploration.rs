//! An exploration scenario: players spread out across a procedurally
//! generated world at increasing speed, stressing on-demand terrain
//! generation (the paper's Section IV-D experiment in miniature).
//!
//! Run with: `cargo run --release --example exploration`

use servo::core::ServoDeployment;
use servo::metrics::Summary;
use servo::server::{GameServer, ServerConfig};
use servo::simkit::SimRng;
use servo::types::SimDuration;
use servo::workload::{BehaviorKind, PlayerFleet};
use servo::world::WorldKind;

fn explore(mut server: GameServer, label: &str) {
    let mut fleet = PlayerFleet::new(
        BehaviorKind::IncreasingStar {
            step_every: SimDuration::from_secs(120),
        },
        SimRng::seed(5),
    );
    fleet.connect_all(5);
    server.run_with_fleet(&mut fleet, SimDuration::from_secs(360));

    let view: Vec<f64> = server.view_range_series().iter().map(|p| p.value).collect();
    let worst_view = view.iter().cloned().fold(f64::INFINITY, f64::min);
    let ticks = Summary::from_durations(&server.tick_durations());
    println!("--- {label} ---");
    println!("chunks generated:        {}", server.stats().chunks_loaded);
    println!("worst view range:        {worst_view:.0} blocks (target: 128)");
    println!(
        "final view range:        {:.0} blocks",
        view.last().copied().unwrap_or(0.0)
    );
    println!("p95 tick duration:       {:.1} ms", ticks.p95);
    println!();
}

fn main() {
    println!("five explorers accelerate from 1 to 4 blocks/s over 6 virtual minutes\n");

    let servo = ServoDeployment::builder()
        .seed(3)
        .view_distance(128)
        .world_kind(WorldKind::Default)
        .build()
        .server;
    explore(servo, "Servo (serverless terrain generation)");

    let opencraft = ServoDeployment::opencraft_baseline(
        3,
        &ServerConfig::opencraft()
            .with_view_distance(128)
            .with_world_kind(WorldKind::Default),
    );
    explore(opencraft, "Opencraft (local terrain generation)");

    println!(
        "Servo keeps terrain generated ahead of the players by fanning out one\n\
         serverless function invocation per chunk; the monolithic baseline's\n\
         background workers fall behind once the players speed up."
    );
}

#!/usr/bin/env python3
"""Unified bench gate for the BENCH_*.json acceptance artefacts.

Every experiment binary and bench in this repository writes a small JSON
artefact at the workspace root (BENCH_world_shard.json, BENCH_hybrid.json,
...). CI used to sanity-check each of them with an ad-hoc inline snippet;
this script replaces all of those with one declarative pass driven by
``tools/bench_gates.toml``:

* **required** — dotted paths that must exist in the JSON (structure gate);
* **invariant** — value checks that must hold in *any* run mode (smoke or
  full scale): ``equals``, ``gt``/``gte``/``lt``/``lte`` against literals,
  and ``lt_path``/``gt_path`` against another path in the same JSON;
* **regression** — comparisons of a freshly emitted value against the
  *committed baseline* of the same file (``git show <ref>:<file>``):
  ``min_ratio`` for higher-is-better metrics (new >= baseline * min_ratio)
  and ``max_ratio`` for lower-is-better ones (new <= baseline * max_ratio).
  Ratios are deliberately loose — CI smoke runs are shorter and noisier
  than the committed full-scale baselines — but tight enough that a real
  performance collapse cannot ship behind a still-green invariant.

Usage:
    python3 tools/bench_gate.py                 # gate every configured file
    python3 tools/bench_gate.py BENCH_foo.json  # gate a subset
    python3 tools/bench_gate.py --no-baseline   # skip regression checks
    python3 tools/bench_gate.py --baseline-ref origin/main

Exits non-zero if any gate fails. A file missing its committed baseline
(first PR introducing a bench) skips regression checks with a note.
"""

from __future__ import annotations

import argparse
import json
import subprocess
import sys
import tomllib
from pathlib import Path


def resolve(data, path: str):
    """Walks a dotted path ('hybrid.qos_ok', 'results.3.speedup')."""
    node = data
    for part in path.split("."):
        if isinstance(node, list):
            try:
                node = node[int(part)]
            except (ValueError, IndexError) as err:
                raise KeyError(f"{path}: bad list index {part!r}") from err
        elif isinstance(node, dict):
            if part not in node:
                raise KeyError(f"{path}: missing key {part!r}")
            node = node[part]
        else:
            raise KeyError(f"{path}: {part!r} walks into a {type(node).__name__}")
    return node


def load_baseline(ref: str, file: str):
    try:
        out = subprocess.run(
            ["git", "show", f"{ref}:{file}"],
            capture_output=True,
            check=True,
        )
    except (subprocess.CalledProcessError, FileNotFoundError):
        return None
    try:
        return json.loads(out.stdout)
    except json.JSONDecodeError:
        return None


class Gate:
    def __init__(self, spec: dict):
        self.file = spec["file"]
        self.required = spec.get("required", [])
        self.invariants = spec.get("invariant", [])
        self.regressions = spec.get("regression", [])

    def run(self, baseline_ref: str | None) -> list[str]:
        """Returns a list of failure messages (empty = gate passed)."""
        failures = []
        path = Path(self.file)
        if not path.is_file():
            return [f"{self.file}: artefact missing (bench did not run?)"]
        try:
            data = json.loads(path.read_text())
        except json.JSONDecodeError as err:
            return [f"{self.file}: invalid JSON ({err})"]

        for required in self.required:
            try:
                resolve(data, required)
            except KeyError as err:
                failures.append(f"{self.file}: required {err}")

        for inv in self.invariants:
            inv_path = inv["path"]
            try:
                value = resolve(data, inv_path)
            except KeyError as err:
                failures.append(f"{self.file}: invariant {err}")
                continue
            if "equals" in inv and value != inv["equals"]:
                failures.append(
                    f"{self.file}: {inv_path} == {value!r}, expected {inv['equals']!r}"
                )
            for op, check in (
                ("gt", lambda v, b: v > b),
                ("gte", lambda v, b: v >= b),
                ("lt", lambda v, b: v < b),
                ("lte", lambda v, b: v <= b),
            ):
                if op in inv and not check(value, inv[op]):
                    failures.append(
                        f"{self.file}: {inv_path} = {value!r} violates {op} {inv[op]!r}"
                    )
            for op, check in (
                ("lt_path", lambda v, b: v < b),
                ("gt_path", lambda v, b: v > b),
            ):
                if op in inv:
                    try:
                        other = resolve(data, inv[op])
                    except KeyError as err:
                        failures.append(f"{self.file}: invariant {err}")
                        continue
                    if not check(value, other):
                        failures.append(
                            f"{self.file}: {inv_path} = {value!r} violates "
                            f"{op} {inv[op]} (= {other!r})"
                        )

        if self.regressions and baseline_ref is not None:
            baseline = load_baseline(baseline_ref, self.file)
            if baseline is None:
                print(
                    f"  note: no committed baseline for {self.file} at "
                    f"{baseline_ref}; regression checks skipped"
                )
            else:
                for reg in self.regressions:
                    reg_path = reg["path"]
                    try:
                        new = resolve(data, reg_path)
                        old = resolve(baseline, reg_path)
                    except KeyError as err:
                        failures.append(f"{self.file}: regression {err}")
                        continue
                    if not isinstance(new, (int, float)) or not isinstance(
                        old, (int, float)
                    ):
                        failures.append(
                            f"{self.file}: regression {reg_path} is not numeric"
                        )
                        continue
                    if "min_ratio" in reg and new < old * reg["min_ratio"]:
                        failures.append(
                            f"{self.file}: {reg_path} collapsed to {new} "
                            f"(< {reg['min_ratio']} x baseline {old})"
                        )
                    if "max_ratio" in reg and new > old * reg["max_ratio"]:
                        failures.append(
                            f"{self.file}: {reg_path} blew up to {new} "
                            f"(> {reg['max_ratio']} x baseline {old})"
                        )
        return failures


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "files",
        nargs="*",
        help="restrict to these artefact files (default: all configured)",
    )
    parser.add_argument(
        "--config",
        default="tools/bench_gates.toml",
        help="gate declarations (default: %(default)s)",
    )
    parser.add_argument(
        "--baseline-ref",
        default="HEAD",
        help="git ref holding the committed baselines (default: %(default)s)",
    )
    parser.add_argument(
        "--no-baseline",
        action="store_true",
        help="skip all regression-vs-baseline checks",
    )
    args = parser.parse_args()

    config = tomllib.loads(Path(args.config).read_text())
    gates = [Gate(spec) for spec in config.get("gate", [])]
    if args.files:
        wanted = set(args.files)
        gates = [g for g in gates if g.file in wanted]
        unknown = wanted - {g.file for g in gates}
        if unknown:
            print(f"no gate configured for: {', '.join(sorted(unknown))}")
            return 1
    if not gates:
        print("no gates selected")
        return 1

    baseline_ref = None if args.no_baseline else args.baseline_ref
    failed = False
    for gate in gates:
        failures = gate.run(baseline_ref)
        if failures:
            failed = True
            print(f"FAIL {gate.file}")
            for failure in failures:
                print(f"  - {failure}")
        else:
            checks = len(gate.required) + len(gate.invariants) + len(gate.regressions)
            print(f"ok   {gate.file} ({checks} checks)")
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
